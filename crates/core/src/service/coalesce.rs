//! Request canonicalization and coalesced batch solving.
//!
//! Canonicalization turns an arbitrary [`PlanRequest`] into the identity
//! the cache and coalescer operate on: slack budgets are resolved to
//! absolute windows against the planner's (cached) baseline, the window
//! is snapped **down** onto the service's QoS quantum, and the solver and
//! DP resolution are made explicit. Snapping down means the plan solved
//! for the canonical window is always feasible for the original request
//! (`latency ≤ canonical window ≤ requested window`), so sharing one
//! entry across a quantum's worth of near-identical windows never breaks
//! a caller's deadline.
//!
//! Batches are formed per [`GroupKey`] — everything that must agree for
//! two requests to be answered from one shared-grid DP table — and
//! solved by [`solve_batch`] according to the service's
//! [`CoalesceMode`].

use tinyengine::qos_window;

use crate::error::DaeDvfsError;
use crate::pipeline::DeploymentPlan;
use crate::planner::Planner;
use crate::request::{PlanRequest, QosBudget, Solver};
use crate::service::cache::PlanKey;

/// The coalescing identity of a request: two in-flight requests with
/// equal group keys can be answered by one batched solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct GroupKey {
    pub model_fingerprint: u64,
    pub config_fingerprint: u64,
    pub solver: Solver,
    pub dp_resolution: usize,
}

/// A fully canonicalized request: cache key, group key and the resolved
/// window the solve runs at.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CanonicalRequest {
    pub group: GroupKey,
    pub key: PlanKey,
    pub window_secs: f64,
}

/// How the coalescer answers a batch of distinct in-flight requests of
/// one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum CoalesceMode {
    /// Answer every group with **one shared-grid DP pass**
    /// ([`crate::Planner::sweep`] semantics) instead of per-request
    /// solves; the default. Answers are deterministic and
    /// *batch-invariant* — bit-identical to a singleton
    /// `Planner::sweep([window])` of the same request, no matter which
    /// other requests were coalesced alongside — and agree with
    /// [`crate::Planner::plan`] within the solver's documented
    /// discretization bound. [`Solver::SequenceDp`] groups fall back to
    /// per-request solves (their shared-grid sweep is future work).
    #[default]
    Swept,
    /// Answer each distinct canonical request with the planner's
    /// per-request path ([`crate::Planner::plan`]): bit-identical to a
    /// serial call, at the cost of one full DP per distinct request.
    /// Identical concurrent requests are still deduplicated by the cache
    /// single-flight, so hot-key traffic coalesces either way.
    Exact,
}

/// Resolves `request` into its canonical cache/coalescing identity.
///
/// # Errors
///
/// [`DaeDvfsError::InvalidRequest`] for degenerate knobs; baseline
/// lowering errors while resolving a slack budget.
pub(crate) fn canonicalize(
    planner: &Planner,
    model_fingerprint: u64,
    config_fingerprint: u64,
    request: &PlanRequest,
    quantum_secs: f64,
) -> Result<CanonicalRequest, DaeDvfsError> {
    request.validate()?;
    let window = match request.budget() {
        QosBudget::Window(qos) => qos,
        QosBudget::Slack(slack) => qos_window(planner.baseline_latency()?, slack),
    };
    let window = quantize(window, quantum_secs);
    let dp_resolution = request
        .dp_resolution()
        .unwrap_or(planner.config().dp_resolution);
    let group = GroupKey {
        model_fingerprint,
        config_fingerprint,
        solver: request.solver(),
        dp_resolution,
    };
    Ok(CanonicalRequest {
        group,
        key: PlanKey {
            model_fingerprint,
            config_fingerprint,
            solver: request.solver(),
            window_bits: window.to_bits(),
            dp_resolution,
        },
        window_secs: window,
    })
}

/// Snaps a window down onto the quantum grid. Windows smaller than one
/// quantum are left exact (snapping would make them non-positive), as is
/// everything when the quantum is zero (quantization disabled).
///
/// The result **never exceeds** `window_secs`: `floor(w/q) * q` can land
/// one ulp above `w` when the division rounds up against a multiple, so
/// the snap steps down a quantum until it is at or below the request —
/// the feasibility contract (shared plans never overrun any aliased
/// caller's deadline) depends on this. When the quantum is smaller than
/// one ulp of the window (`w/q` beyond ~2⁵³), stepping down cannot make
/// progress, so the window is kept exact instead — quantization
/// degrades gracefully rather than looping or overshooting.
pub(crate) fn quantize(window_secs: f64, quantum_secs: f64) -> f64 {
    if quantum_secs <= 0.0 {
        return window_secs;
    }
    let mut snapped = (window_secs / quantum_secs).floor() * quantum_secs;
    for _ in 0..4 {
        if snapped <= window_secs {
            break;
        }
        let stepped = snapped - quantum_secs;
        if stepped >= snapped {
            // Sub-ulp quantum: subtraction is a no-op at this magnitude.
            return window_secs;
        }
        snapped = stepped;
    }
    if snapped > 0.0 && snapped <= window_secs {
        snapped
    } else {
        window_secs
    }
}

/// Answers one group's batch of **distinct** windows according to
/// `mode`. Results are positionally aligned with `windows`.
/// `sweep_threads` caps the swept path's extraction striping — the
/// calling worker's share of the machine, so concurrent batches do not
/// oversubscribe it.
pub(crate) fn solve_batch(
    planner: &Planner,
    mode: CoalesceMode,
    solver: Solver,
    dp_resolution: usize,
    windows: &[f64],
    sweep_threads: usize,
) -> Vec<Result<DeploymentPlan, DaeDvfsError>> {
    match (mode, solver) {
        (CoalesceMode::Swept, Solver::ReserveGrid) => {
            // reuse=true: hot groups hit the same planner (and so the same
            // workspace pool) batch after batch, and the checkpointed DP
            // table lets an unchanged group skip the shared-grid fill
            // entirely. Bit-identical to a cold fill by construction.
            planner.sweep_distinct(windows, dp_resolution, sweep_threads, true)
        }
        _ => windows
            .iter()
            .map(|&window| {
                let request = PlanRequest::qos(window)
                    .with_solver(solver)
                    .with_dp_resolution(dp_resolution);
                planner.plan(&request)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_snaps_down_and_keeps_tiny_windows_exact() {
        assert_eq!(quantize(0.537, 0.0), 0.537);
        assert!((quantize(0.537, 0.01) - 0.53).abs() < 1e-12);
        assert!((quantize(0.5, 0.01) - 0.5).abs() < 1e-12);
        // Below one quantum the window stays exact instead of hitting 0.
        assert_eq!(quantize(0.004, 0.01), 0.004);
    }

    #[test]
    fn quantized_window_never_exceeds_the_request() {
        for window in [0.011, 0.5, 0.9999, 3.0, 1e-4] {
            for quantum in [0.0, 1e-3, 0.1, 5.0] {
                let snapped = quantize(window, quantum);
                assert!(snapped > 0.0);
                assert!(snapped <= window, "{window} @ {quantum}");
            }
        }
        // `floor(w/q) * q` rounds one ulp ABOVE w for this pair; the snap
        // must still come out at or below the request.
        let w: f64 = 3_857.629_139_124_038_4;
        let q: f64 = 0.057_999_866_775_782_03;
        assert!(
            (w / q).floor() * q > w,
            "counterexample no longer rounds up"
        );
        let snapped = quantize(w, q);
        assert!(snapped <= w && snapped > 0.0);
        assert!(w - snapped < 2.0 * q, "stepped down too far");
    }

    #[test]
    fn sub_ulp_quantum_keeps_the_window_exact_and_terminates() {
        // w/q exceeds 2^53: floor(w/q)*q lands above w and subtracting
        // one quantum is a floating-point no-op — this pair hung the
        // naive `while snapped > w { snapped -= q }` loop forever.
        let w: f64 = 82_748_235_400.785;
        let q: f64 = 1.42e-7;
        assert_eq!(quantize(w, q), w);
        // Plain sub-ulp quanta (no overshoot) also keep a usable key.
        let snapped = quantize(1e10, 1e-9);
        assert!(snapped > 0.0 && snapped <= 1e10);
    }
}
