//! Baseline-engine integration tests.

use stm32_rcc::{ClockSource, Hertz, PllConfig, SysclkConfig};
use tinyengine::{
    plan_memory_with_budget, profile_model, qos_window, run_iso_latency, IdlePolicy, TinyEngine,
};
use tinynn::models::{paper_models, vww};

fn clock(n: u32) -> SysclkConfig {
    SysclkConfig::Pll(
        PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, n, 2).expect("valid ladder"),
    )
}

#[test]
fn latency_scales_inversely_with_frequency_but_sublinearly() {
    // Compute scales with f; memory barely does — so the speedup from
    // 100 -> 216 MHz must be between 1x and 2.16x.
    let model = vww();
    let fast = TinyEngine::new()
        .with_clock(clock(216))
        .run(&model)
        .expect("216");
    let slow = TinyEngine::new()
        .with_clock(clock(100))
        .run(&model)
        .expect("100");
    let speedup = slow.total_time_secs / fast.total_time_secs;
    assert!(
        speedup > 1.5 && speedup < 2.16,
        "speedup {speedup:.2} outside the compute/memory envelope"
    );
}

#[test]
fn per_layer_kinds_cover_the_model() {
    let model = vww();
    let report = TinyEngine::new().run(&model).expect("runs");
    let dw = report
        .layers
        .iter()
        .filter(|l| l.kind == tinynn::LayerKind::Depthwise)
        .count();
    let pw = report
        .layers
        .iter()
        .filter(|l| l.kind == tinynn::LayerKind::Pointwise)
        .count();
    assert_eq!(dw, 8, "vww has 8 depthwise layers");
    assert_eq!(pw, 8, "vww has 8 pointwise layers");
}

#[test]
fn profiler_and_executor_agree_for_all_models() {
    let engine = TinyEngine::new();
    for model in paper_models() {
        let report = engine.run(&model).expect("runs");
        let profile = profile_model(&engine, &model).expect("profiles");
        let drift = (profile.total_measured_secs() - report.total_time_secs).abs();
        assert!(drift < 1e-5, "{}: profiler drift {drift}", model.name);
    }
}

#[test]
fn iso_latency_energy_grows_linearly_with_window_for_fixed_policy() {
    let model = vww();
    let engine = TinyEngine::new();
    let t = engine.run(&model).expect("runs").total_time_secs;
    let e1 =
        run_iso_latency(&engine, &model, qos_window(t, 0.2), IdlePolicy::ClockGated).expect("runs");
    let e2 =
        run_iso_latency(&engine, &model, qos_window(t, 0.4), IdlePolicy::ClockGated).expect("runs");
    let delta = e2.total_energy.as_f64() - e1.total_energy.as_f64();
    // Window grew by 0.2 * t at 12 mW gated power.
    let expected = 0.012 * 0.2 * t;
    assert!(
        (delta - expected).abs() / expected < 0.01,
        "idle-tail energy delta {delta} vs expected {expected}"
    );
}

#[test]
fn memory_budget_failure_is_reported_with_layer() {
    let model = vww();
    let plan = plan_memory_with_budget(&model, 1).expect("planning itself succeeds");
    assert!(!plan.fits());
    // The executor surfaces it as an error.
    let engine = TinyEngine::new();
    let lowered = engine.lower(&model);
    assert!(lowered.is_ok(), "default budget fits");
}

#[test]
fn reports_are_stable_across_machines() {
    let model = vww();
    let engine = TinyEngine::new();
    let mut machine_a = mcu_sim::Machine::new(*engine.clock());
    let mut machine_b = mcu_sim::Machine::new(*engine.clock());
    let a = engine.run_on(&model, &mut machine_a).expect("a");
    let b = engine.run_on(&model, &mut machine_b).expect("b");
    assert_eq!(a, b);
}
