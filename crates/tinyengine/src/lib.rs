//! TinyEngine-style baseline inference engine on the simulated STM32F767.
//!
//! This crate reproduces the system the paper compares against and builds
//! upon: the MCUNet/TinyEngine execution model. It provides:
//!
//! * [`cost`] — lowering of CNN layers into machine-level profiles shared
//!   with the DAE transform (per-channel depthwise units, per-column
//!   pointwise units);
//! * [`planner`] — ping-pong activation memory planning under the MCU SRAM
//!   budget;
//! * [`executor`] — the fixed-216-MHz whole-layer executor;
//! * [`idle`] — the iso-latency policies of the evaluation (busy idle at
//!   216 MHz, WFI, and the "clock gating" enhancement);
//! * [`profile`] — the on-board-timer + INA219 per-layer profiler.
//!
//! # Examples
//!
//! ```
//! use tinyengine::{qos_window, run_iso_latency, IdlePolicy, TinyEngine};
//! use tinynn::models::vww_sized;
//!
//! # fn main() -> Result<(), tinyengine::EngineError> {
//! let engine = TinyEngine::new();
//! let model = vww_sized(32);
//! let latency = engine.run(&model)?.total_time_secs;
//! let report = run_iso_latency(
//!     &engine, &model, qos_window(latency, 0.3), IdlePolicy::ClockGated)?;
//! assert!(report.idle_energy.as_f64() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod cost;
pub mod error;
pub mod executor;
pub mod idle;
pub mod planner;
pub mod profile;

pub use cost::{profile as layer_profile, KernelProfile, UnitGeometry};
pub use error::EngineError;
pub use executor::{tinyengine_clock, InferenceReport, LayerExecution, LoweredModel, TinyEngine};
pub use idle::{qos_window, run_iso_latency, IdlePolicy, IsoLatencyReport};
pub use planner::{plan_memory, plan_memory_with_budget, MemoryPlan, PlanBudgetError};
pub use profile::{profile_model, ModelProfile, ProfiledLayer};
