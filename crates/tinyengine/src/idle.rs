//! Iso-latency execution: inference + idle-until-deadline policies.
//!
//! The paper's evaluation is iso-latency: every competitor is measured over
//! the same QoS window. For TinyEngine "this entails the board remaining in
//! an idle state with a constant frequency of 216 MHz after an inference,
//! until the QoS threshold is met"; the enhanced baseline instead gates
//! non-utilized clocks and the voltage regulator while waiting.

use mcu_sim::{IdleMode, Machine};
use stm32_power::Joules;
use tinynn::Model;

use crate::error::EngineError;
use crate::executor::{InferenceReport, LoweredModel, TinyEngine};

/// How the baseline waits out the remainder of the QoS window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdlePolicy {
    /// Keep spinning at 216 MHz (plain TinyEngine).
    Busy216,
    /// WFI sleep at 216 MHz.
    Wfi216,
    /// The paper's "clock gating" enhancement.
    ClockGated,
}

impl IdlePolicy {
    fn mode(self) -> IdleMode {
        match self {
            IdlePolicy::Busy216 => IdleMode::BusyRun,
            IdlePolicy::Wfi216 => IdleMode::Wfi,
            IdlePolicy::ClockGated => IdleMode::ClockGated,
        }
    }
}

/// Result of an iso-latency window: inference + idle tail.
#[derive(Debug, Clone, PartialEq)]
pub struct IsoLatencyReport {
    /// The inference portion.
    pub inference: InferenceReport,
    /// The QoS window length in seconds.
    pub qos_secs: f64,
    /// Energy spent idling after the inference.
    pub idle_energy: Joules,
    /// Total window energy (inference + idle).
    pub total_energy: Joules,
    /// The idle policy used.
    pub policy: IdlePolicy,
}

/// Runs one inference and idles until `qos_secs`, measuring total energy.
///
/// # Errors
///
/// Propagates engine lowering errors.
///
/// # Panics
///
/// Panics if the inference itself overruns the QoS window — the caller is
/// expected to derive the window from a measured baseline latency via
/// [`qos_window`], which makes it feasible by construction.
pub fn run_iso_latency(
    engine: &TinyEngine,
    model: &Model,
    qos_secs: f64,
    policy: IdlePolicy,
) -> Result<IsoLatencyReport, EngineError> {
    Ok(engine.compile(model)?.run_iso_latency(qos_secs, policy))
}

impl LoweredModel {
    /// Replays one inference and idles until `qos_secs` — the compiled
    /// counterpart of [`run_iso_latency`], for sweeping many QoS windows
    /// over a single lowering.
    ///
    /// # Panics
    ///
    /// Panics if the inference itself overruns the QoS window (see
    /// [`run_iso_latency`]).
    pub fn run_iso_latency(&self, qos_secs: f64, policy: IdlePolicy) -> IsoLatencyReport {
        self.run_iso_latency_on(&mut Machine::new(*self.clock()), qos_secs, policy)
    }

    /// [`LoweredModel::run_iso_latency`] on a caller-supplied machine, so
    /// non-stock substrates (custom CPU/memory/power models) price the
    /// baseline window on their own hardware description. The machine is
    /// switched to the engine clock by the replay; its elapsed time and
    /// energy counters are treated as window-relative (pass a fresh
    /// machine).
    ///
    /// # Panics
    ///
    /// Panics if the inference itself overruns the QoS window (see
    /// [`run_iso_latency`]).
    pub fn run_iso_latency_on(
        &self,
        machine: &mut Machine,
        qos_secs: f64,
        policy: IdlePolicy,
    ) -> IsoLatencyReport {
        let inference = self.run_on(machine);
        let remaining = qos_secs - inference.total_time_secs;
        assert!(
            remaining >= 0.0,
            "QoS window {qos_secs}s shorter than inference {}s",
            inference.total_time_secs
        );
        let e_before = machine.energy();
        machine.idle(remaining, policy.mode(), "iso-latency-idle");
        let idle_energy = machine.energy() - e_before;
        IsoLatencyReport {
            total_energy: inference.total_energy + idle_energy,
            inference,
            qos_secs,
            idle_energy,
            policy,
        }
    }
}

/// Converts the paper's QoS slack percentage (10 / 30 / 50 %) into an
/// absolute window, relative to a measured baseline latency.
pub fn qos_window(baseline_latency_secs: f64, slack_fraction: f64) -> f64 {
    baseline_latency_secs * (1.0 + slack_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::models::vww_sized;

    #[test]
    fn idle_policies_ordered() {
        let engine = TinyEngine::new();
        let model = vww_sized(32);
        let t = engine.run(&model).unwrap().total_time_secs;
        let qos = qos_window(t, 0.5);
        let busy = run_iso_latency(&engine, &model, qos, IdlePolicy::Busy216).unwrap();
        let wfi = run_iso_latency(&engine, &model, qos, IdlePolicy::Wfi216).unwrap();
        let gated = run_iso_latency(&engine, &model, qos, IdlePolicy::ClockGated).unwrap();
        assert!(busy.total_energy > wfi.total_energy);
        assert!(wfi.total_energy > gated.total_energy);
        // Inference portion identical across policies.
        assert_eq!(busy.inference.total_energy, gated.inference.total_energy);
    }

    #[test]
    fn qos_window_math() {
        assert!((qos_window(0.1, 0.3) - 0.13).abs() < 1e-12);
        assert!((qos_window(2.0, 0.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tighter_qos_less_idle_energy() {
        let engine = TinyEngine::new();
        let model = vww_sized(32);
        let t = engine.run(&model).unwrap().total_time_secs;
        let tight =
            run_iso_latency(&engine, &model, qos_window(t, 0.1), IdlePolicy::Busy216).unwrap();
        let relaxed =
            run_iso_latency(&engine, &model, qos_window(t, 0.5), IdlePolicy::Busy216).unwrap();
        assert!(relaxed.idle_energy > tight.idle_energy);
        assert!(relaxed.total_energy > tight.total_energy);
    }

    #[test]
    #[should_panic(expected = "shorter than inference")]
    fn infeasible_qos_panics() {
        let engine = TinyEngine::new();
        let model = vww_sized(32);
        let _ = run_iso_latency(&engine, &model, 1e-9, IdlePolicy::Busy216);
    }
}
