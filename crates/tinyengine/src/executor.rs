//! The baseline executor: TinyEngine-style whole-layer schedules.

use mcu_sim::cache::CacheConfig;
use mcu_sim::{Machine, Segment};
use stm32_power::Joules;
use stm32_rcc::{ClockSource, Hertz, PllConfig, SysclkConfig};
use tinynn::{LayerKind, Model};

use crate::cost::{profile, KernelProfile};
use crate::error::EngineError;
use crate::planner::plan_memory;

/// The 216 MHz PLL configuration TinyEngine runs at in the paper's setup.
///
/// # Panics
///
/// Never panics in practice; the constant configuration is valid.
pub fn tinyengine_clock() -> SysclkConfig {
    SysclkConfig::Pll(
        PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 216, 2)
            .expect("216 MHz reference configuration is valid"),
    )
}

/// Timing and energy of one executed layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerExecution {
    /// Layer name.
    pub name: String,
    /// Reporting kind.
    pub kind: LayerKind,
    /// Wall time in seconds.
    pub time_secs: f64,
    /// Energy consumed.
    pub energy: Joules,
}

/// Result of executing a full inference.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// Model name.
    pub model: String,
    /// Per-layer results in execution order.
    pub layers: Vec<LayerExecution>,
    /// Total inference wall time.
    pub total_time_secs: f64,
    /// Total inference energy.
    pub total_energy: Joules,
}

impl InferenceReport {
    /// Average power over the inference.
    ///
    /// # Panics
    ///
    /// Panics if the report covers zero time.
    pub fn average_power_mw(&self) -> f64 {
        assert!(self.total_time_secs > 0.0, "empty report");
        self.total_energy.as_f64() / self.total_time_secs * 1e3
    }
}

/// The TinyEngine-style baseline engine.
///
/// Lowers every layer to a single monolithic segment (interleaved loads and
/// computes, the per-channel / per-column order of CMSIS-NN and TinyEngine)
/// and executes the whole model at one fixed clock.
///
/// # Examples
///
/// ```
/// use tinyengine::TinyEngine;
/// use tinynn::models::vww_sized;
///
/// # fn main() -> Result<(), tinyengine::EngineError> {
/// let engine = TinyEngine::new();
/// let report = engine.run(&vww_sized(32))?;
/// assert!(report.total_time_secs > 0.0);
/// assert_eq!(report.model, "vww");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TinyEngine {
    clock: SysclkConfig,
    cache: CacheConfig,
}

impl TinyEngine {
    /// An engine at the paper's 216 MHz configuration.
    pub fn new() -> Self {
        TinyEngine {
            clock: tinyengine_clock(),
            cache: CacheConfig::stm32f767(),
        }
    }

    /// Overrides the fixed clock (e.g. for frequency-sweep experiments).
    pub fn with_clock(mut self, clock: SysclkConfig) -> Self {
        self.clock = clock;
        self
    }

    /// Overrides the cache geometry (for ablations).
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// The engine's fixed clock.
    pub fn clock(&self) -> &SysclkConfig {
        &self.clock
    }

    /// Lowers `model` into one baseline segment per layer.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Nn`] on shape errors and
    /// [`EngineError::Budget`] if activations exceed the SRAM budget.
    pub fn lower(&self, model: &Model) -> Result<Vec<(KernelProfile, Segment)>, EngineError> {
        let mem_plan = plan_memory(model)?;
        if !mem_plan.fits() {
            let worst = mem_plan
                .placements
                .iter()
                .max_by_key(|p| p.live_bytes())
                .expect("plan has layers");
            let plan = model.plan()?;
            return Err(EngineError::Budget(crate::planner::PlanBudgetError {
                peak_bytes: mem_plan.peak_bytes,
                budget_bytes: mem_plan.budget_bytes,
                layer: plan[worst.index].name.clone(),
            }));
        }
        let plan = model.plan()?;
        let mut out = Vec::with_capacity(plan.len());
        for (nl, info) in model.layers().zip(plan.iter()) {
            let p = profile(&nl.layer, info);
            let seg = Segment::other(
                p.name.clone(),
                p.baseline_ops(),
                p.baseline_traffic(&self.cache),
            );
            out.push((p, seg));
        }
        Ok(out)
    }

    /// Lowers `model` once into a replayable [`LoweredModel`].
    ///
    /// Baseline segments depend only on the model and the cache geometry,
    /// so repeated runs (iso-latency sweeps, baseline comparisons at many
    /// QoS points) should compile once and replay the result.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TinyEngine::lower`].
    pub fn compile(&self, model: &Model) -> Result<LoweredModel, EngineError> {
        Ok(LoweredModel {
            model_name: model.name.clone(),
            clock: self.clock,
            lowered: self.lower(model)?,
        })
    }

    /// Runs `model` on a fresh machine at the engine clock.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TinyEngine::lower`].
    pub fn run(&self, model: &Model) -> Result<InferenceReport, EngineError> {
        Ok(self.compile(model)?.run())
    }

    /// Runs `model` on an existing machine (which may carry prior state),
    /// switching it to the engine clock first.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TinyEngine::lower`].
    pub fn run_on(
        &self,
        model: &Model,
        machine: &mut Machine,
    ) -> Result<InferenceReport, EngineError> {
        Ok(self.compile(model)?.run_on(machine))
    }
}

/// A model lowered once into its baseline whole-layer segments,
/// replayable any number of times without re-lowering.
///
/// Produced by [`TinyEngine::compile`]; replays are bit-identical to
/// [`TinyEngine::run`].
#[derive(Debug, Clone)]
pub struct LoweredModel {
    model_name: String,
    clock: SysclkConfig,
    lowered: Vec<(KernelProfile, Segment)>,
}

impl LoweredModel {
    /// The name of the model this was lowered from.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// The engine clock the segments will run at.
    pub fn clock(&self) -> &SysclkConfig {
        &self.clock
    }

    /// The lowered `(profile, segment)` pairs in execution order.
    pub fn lowered(&self) -> &[(KernelProfile, Segment)] {
        &self.lowered
    }

    /// Replays the inference on a fresh machine at the engine clock.
    pub fn run(&self) -> InferenceReport {
        let mut machine = Machine::new(self.clock);
        self.run_on(&mut machine)
    }

    /// Replays the inference on an existing machine (which may carry prior
    /// state), switching it to the engine clock first.
    pub fn run_on(&self, machine: &mut Machine) -> InferenceReport {
        machine.switch_clock(self.clock);
        let mut layers = Vec::with_capacity(self.lowered.len());
        let t0 = machine.elapsed_secs();
        let e0 = machine.energy();
        for (p, seg) in &self.lowered {
            let e_before = machine.energy();
            let dt = machine.run_segment(seg);
            layers.push(LayerExecution {
                name: p.name.clone(),
                kind: p.kind,
                time_secs: dt,
                energy: machine.energy() - e_before,
            });
        }
        InferenceReport {
            model: self.model_name.clone(),
            layers,
            total_time_secs: machine.elapsed_secs() - t0,
            total_energy: machine.energy() - e0,
        }
    }
}

impl Default for TinyEngine {
    fn default() -> Self {
        TinyEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::models::{paper_models, vww_sized};

    #[test]
    fn all_paper_models_run() {
        let engine = TinyEngine::new();
        for m in paper_models() {
            let r = engine.run(&m).expect("baseline run succeeds");
            assert_eq!(r.layers.len(), m.layer_count());
            assert!(r.total_time_secs > 0.0);
            assert!(r.total_energy.as_f64() > 0.0);
        }
    }

    #[test]
    fn inference_latency_plausible() {
        // MCUNet-class models at 216 MHz take single-digit to low-hundreds
        // of milliseconds.
        let engine = TinyEngine::new();
        for m in paper_models() {
            let r = engine.run(&m).unwrap();
            assert!(
                r.total_time_secs > 1e-4 && r.total_time_secs < 1.0,
                "{}: implausible latency {}",
                m.name,
                r.total_time_secs
            );
        }
    }

    #[test]
    fn layer_times_sum_to_total() {
        let engine = TinyEngine::new();
        let r = engine.run(&vww_sized(32)).unwrap();
        let sum: f64 = r.layers.iter().map(|l| l.time_secs).sum();
        assert!((sum - r.total_time_secs).abs() < 1e-12);
        let esum: f64 = r.layers.iter().map(|l| l.energy.as_f64()).sum();
        assert!((esum - r.total_energy.as_f64()).abs() < 1e-12);
    }

    #[test]
    fn lower_frequency_is_slower() {
        let m = vww_sized(32);
        let fast = TinyEngine::new().run(&m).unwrap();
        let slow_clock = SysclkConfig::Pll(
            PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 100, 2).unwrap(),
        );
        let slow = TinyEngine::new().with_clock(slow_clock).run(&m).unwrap();
        assert!(slow.total_time_secs > fast.total_time_secs);
    }

    #[test]
    fn average_power_in_range() {
        let r = TinyEngine::new().run(&vww_sized(32)).unwrap();
        let mw = r.average_power_mw();
        assert!((50.0..400.0).contains(&mw), "implausible power {mw} mW");
    }

    #[test]
    fn deterministic_reports() {
        let m = vww_sized(32);
        let a = TinyEngine::new().run(&m).unwrap();
        let b = TinyEngine::new().run(&m).unwrap();
        assert_eq!(a, b);
    }
}
