//! Lowering CNN layers to machine-level cost profiles.
//!
//! A [`KernelProfile`] describes a layer the way the execution engines see
//! it: a number of *units* (channels for depthwise, image columns for
//! pointwise — exactly the granularity TinyEngine/CMSIS-NN iterate at and
//! the paper's DAE transform batches `g` at a time), with per-unit compute
//! operations and layout-aware memory traffic. Both the TinyEngine baseline
//! executor and the DAE transform price their schedules from the same
//! profile, which guarantees iso-work comparisons.
//!
//! ## Why DAE helps, in this model
//!
//! Activations live in **HWC** layout (channels innermost), the layout
//! TinyEngine and CMSIS-NN use:
//!
//! * **Depthwise** kernels process one channel at a time, so they read the
//!   tensor with stride `C`: every 32-byte cache line yields only a few
//!   useful bytes per channel, and each per-channel pass touches *every*
//!   line of the input tensor. When the tensor exceeds the 16 KB L1, the
//!   interleaved baseline therefore re-streams the whole tensor once per
//!   channel. DAE staging gathers `g` channels into dense buffers, paying
//!   the strided walk once per *group* instead of once per channel.
//! * **Pointwise** kernels read one contiguous column (`C` bytes) per unit
//!   but re-walk the full `c_in × c_out` weight matrix for every column.
//!   Batching `g` columns amortizes the weight walk `g`-fold (classic
//!   register-level unrolling) and moves the column staging into a
//!   memory-bound segment.
//!
//! On top of that, DAE runs the staging segments at the 50 MHz LFO where
//! fills cost almost the same wall time but far less power.

use mcu_sim::cache::{reuse_hit_ratio, CacheConfig};
use mcu_sim::{MemoryTraffic, OpCounts};
use tinynn::{Layer, LayerInfo, LayerKind};

/// Cache-line size used to convert byte traffic into line fills.
pub const LINE_BYTES: u64 = 32;

/// Rounds byte counts up to cache-line fills.
pub fn lines(bytes: u64) -> u64 {
    bytes.div_ceil(LINE_BYTES)
}

/// Layout-specific access geometry of a layer's units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitGeometry {
    /// Depthwise channels: strided (stride `C`) gather over the whole input
    /// tensor per unit.
    DepthwiseChannels {
        /// Cache lines of the whole input tensor.
        tensor_lines: u64,
        /// Total input tensor bytes.
        tensor_bytes: u64,
    },
    /// Pointwise columns: contiguous `c_in` bytes per unit.
    PointwiseColumns,
    /// Monolithic layers (stem conv, pooling, dense, ReLU).
    Monolithic,
}

/// Machine-level description of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Layer name.
    pub name: String,
    /// Reporting kind (depthwise / pointwise / rest).
    pub kind: LayerKind,
    /// Access geometry.
    pub geometry: UnitGeometry,
    /// Number of schedulable units (channels for dw, columns for pw,
    /// 1 for monolithic layers).
    pub units: u64,
    /// Input bytes consumed per unit (dense channel plane for dw, one
    /// column for pw).
    pub unit_input_bytes: u64,
    /// Output bytes produced per unit.
    pub unit_output_bytes: u64,
    /// Compute operations per unit, excluding any per-unit weight walk.
    pub unit_ops: OpCounts,
    /// Operations of one full weight-matrix walk (pointwise re-reads these
    /// per unrolled column batch in the baseline; DAE amortizes them per
    /// group).
    pub weight_walk_ops: OpCounts,
    /// Columns the baseline kernel unrolls per weight walk (TinyEngine's
    /// hand-written pointwise kernels keep weights in registers across ~4
    /// columns; 1 for everything else).
    pub baseline_unroll: u64,
    /// Total flash-resident weight bytes.
    pub weight_bytes: u64,
}

impl KernelProfile {
    /// Total input bytes across all units.
    pub fn input_bytes(&self) -> u64 {
        self.units * self.unit_input_bytes
    }

    /// Total output bytes across all units.
    pub fn output_bytes(&self) -> u64 {
        self.units * self.unit_output_bytes
    }

    /// Whether the DAE transform applies (depthwise / pointwise).
    pub fn dae_capable(&self) -> bool {
        matches!(
            self.geometry,
            UnitGeometry::DepthwiseChannels { .. } | UnitGeometry::PointwiseColumns
        )
    }

    /// Compute operations of the *interleaved baseline* schedule: per-unit
    /// ops plus, for pointwise, one weight walk per unrolled column batch.
    pub fn baseline_ops(&self) -> OpCounts {
        let walks = self.units.div_ceil(self.baseline_unroll.max(1));
        self.unit_ops.scaled(self.units) + self.weight_walk_ops.scaled(walks)
    }

    /// Lines one per-channel pass touches: with `C ≥ 32` each 32-byte line
    /// holds 32 channels of one pixel, so a pass touches one line per
    /// pixel; with small `C` it touches every tensor line.
    fn dw_lines_per_pass(&self, tensor_lines: u64) -> u64 {
        tensor_lines.min(self.unit_input_bytes)
    }

    /// How many distinct per-channel passes touch each line in the
    /// interleaved baseline: all channels sharing the line, capped at the
    /// 32 channels a line can hold.
    fn dw_touches_per_line(&self) -> u64 {
        self.units.min(LINE_BYTES)
    }

    /// Fill count of a strided depthwise walk where each line is touched by
    /// `touches` separate passes whose per-pass footprint is
    /// `lines_per_pass × 32` bytes: the first touch always misses; later
    /// touches miss on the non-resident fraction.
    fn dw_strided_fills(&self, tensor_lines: u64, touches: u64, cache: &CacheConfig) -> u64 {
        let ws_pass = self.dw_lines_per_pass(tensor_lines) * LINE_BYTES;
        let reuse = reuse_hit_ratio(ws_pass, cache);
        let extra = (touches.saturating_sub(1)) as f64 * tensor_lines as f64 * (1.0 - reuse);
        tensor_lines + extra.round() as u64
    }

    /// Memory traffic of the interleaved baseline schedule.
    pub fn baseline_traffic(&self, cache: &CacheConfig) -> MemoryTraffic {
        let out_fills = lines(self.output_bytes());
        match self.geometry {
            UnitGeometry::DepthwiseChannels { tensor_lines, .. } => {
                // Strided per-channel walks: each line is re-touched by
                // every channel it holds; once the per-pass footprint
                // exceeds the cache, those re-touches miss.
                let fills = self.dw_strided_fills(tensor_lines, self.dw_touches_per_line(), cache);
                MemoryTraffic {
                    cache_hits: 0,
                    sram_line_fills: fills + out_fills,
                    flash_line_fills: lines(self.weight_bytes),
                    sram_uncached: 0,
                }
            }
            UnitGeometry::PointwiseColumns => {
                // Columns stream contiguously: each input line is fetched
                // once. Weights are fetched once plus per-column rescans
                // that miss the cache.
                MemoryTraffic {
                    cache_hits: 0,
                    sram_line_fills: lines(self.input_bytes()) + out_fills,
                    flash_line_fills: lines(self.weight_bytes),
                    sram_uncached: 0,
                }
                .merged(&self.weight_rescan_traffic(
                    self.units.div_ceil(self.baseline_unroll.max(1)),
                    self.baseline_unroll,
                    cache,
                ))
            }
            UnitGeometry::Monolithic => MemoryTraffic {
                cache_hits: 0,
                sram_line_fills: lines(self.input_bytes()) + out_fills,
                flash_line_fills: lines(self.weight_bytes),
                sram_uncached: 0,
            },
        }
    }

    /// Staging traffic of one DAE memory segment for a batch of `n` units
    /// (plus the weights, once, when `first` is set).
    pub fn dae_stage_traffic(&self, n: u64, first: bool, cache: &CacheConfig) -> MemoryTraffic {
        let weights = if first { lines(self.weight_bytes) } else { 0 };
        match self.geometry {
            UnitGeometry::DepthwiseChannels { tensor_lines, .. } => {
                // One gather pass stages n channels at once, so each line
                // is touched by `ceil(touches / g)` group-passes instead of
                // `touches` channel-passes. Amortize that over the groups:
                // this segment carries a `1/groups`-th share of the total
                // strided-gather fills, plus the dense-buffer writes.
                let touches = self.dw_touches_per_line();
                let group_touches = touches.div_ceil(n.max(1));
                let total_gather = self.dw_strided_fills(tensor_lines, group_touches, cache);
                let groups = self.units.div_ceil(n.max(1));
                let share = total_gather.div_ceil(groups);
                MemoryTraffic {
                    cache_hits: 0,
                    sram_line_fills: share + lines(n * self.unit_input_bytes),
                    flash_line_fills: weights,
                    sram_uncached: 0,
                }
            }
            UnitGeometry::PointwiseColumns | UnitGeometry::Monolithic => MemoryTraffic {
                cache_hits: 0,
                sram_line_fills: lines(n * self.unit_input_bytes),
                flash_line_fills: weights,
                sram_uncached: 0,
            },
        }
    }

    /// Compute operations of one DAE compute segment over `n` staged units:
    /// the per-unit ops plus a *single* weight walk (amortized over the
    /// batch).
    pub fn dae_compute_ops(&self, n: u64) -> OpCounts {
        self.unit_ops.scaled(n) + self.weight_walk_ops
    }

    /// Memory traffic of one DAE compute segment: output write-back, cache
    /// spills when the staged working set overflows, and weight-rescan
    /// misses.
    pub fn dae_compute_traffic(&self, n: u64, groups: u64, cache: &CacheConfig) -> MemoryTraffic {
        let ws = n * self.unit_input_bytes + self.weight_bytes;
        let hit = reuse_hit_ratio(ws, cache);
        let spilled = ((1.0 - hit) * lines(n * self.unit_input_bytes) as f64).round() as u64;
        MemoryTraffic {
            cache_hits: 0,
            sram_line_fills: spilled + lines(n * self.unit_output_bytes),
            flash_line_fills: 0,
            sram_uncached: 0,
        }
        .merged(&self.weight_rescan_traffic(groups, n, cache))
    }

    /// Extra flash traffic caused by weight re-walks that miss the cache:
    /// `rescans - 1` re-walks over a working set of `batch` unit buffers
    /// plus the weights.
    pub fn weight_rescan_traffic(
        &self,
        rescans: u64,
        batch: u64,
        cache: &CacheConfig,
    ) -> MemoryTraffic {
        if !matches!(self.geometry, UnitGeometry::PointwiseColumns) || rescans <= 1 {
            return MemoryTraffic::ZERO;
        }
        let ws = self.weight_bytes + batch * self.unit_input_bytes;
        let hit = reuse_hit_ratio(ws, cache);
        let missed = (1.0 - hit) * (rescans - 1) as f64 * lines(self.weight_bytes) as f64;
        MemoryTraffic {
            cache_hits: 0,
            sram_line_fills: 0,
            flash_line_fills: missed.round() as u64,
            sram_uncached: 0,
        }
    }
}

/// Builds the [`KernelProfile`] for a planned layer.
///
/// Per-unit operation counts follow the inner loops of CMSIS-NN-style int8
/// kernels:
///
/// * depthwise 3×3: per output pixel `k²` MACs, `k²` activation loads, a
///   few address-arithmetic ALU ops and one store;
/// * pointwise: per column `c_in·c_out` MACs, `c_in` activation loads and
///   `c_out` stores, with the `c_in·c_out` weight loads accounted as a
///   separate weight walk (re-done per column in the baseline);
/// * other layers are treated as a single monolithic unit.
pub fn profile(layer: &Layer, info: &LayerInfo) -> KernelProfile {
    match layer {
        Layer::Depthwise(dw) => {
            let out_pixels = (info.output.h * info.output.w) as u64;
            let k2 = (dw.kernel * dw.kernel) as u64;
            let per_pixel = OpCounts {
                mac: k2,
                load: k2,
                alu: 6,
                store: 1,
                branch: 1,
            };
            let tensor_bytes = info.input.bytes() as u64;
            KernelProfile {
                name: info.name.clone(),
                kind: LayerKind::Depthwise,
                geometry: UnitGeometry::DepthwiseChannels {
                    tensor_lines: lines(tensor_bytes),
                    tensor_bytes,
                },
                units: info.input.c as u64,
                unit_input_bytes: (info.input.h * info.input.w) as u64,
                unit_output_bytes: out_pixels,
                unit_ops: per_pixel.scaled(out_pixels),
                weight_walk_ops: OpCounts::ZERO,
                baseline_unroll: 1,
                weight_bytes: info.weight_bytes as u64,
            }
        }
        Layer::Pointwise(pw) => {
            let cols = (info.input.h * info.input.w) as u64;
            let c_in = pw.c_in as u64;
            let c_out = pw.c_out as u64;
            let per_col = OpCounts {
                mac: c_in * c_out,
                load: c_in,
                alu: 2 * c_out,
                store: c_out,
                branch: c_out,
            };
            let weight_walk = OpCounts {
                load: c_in * c_out,
                alu: c_out,
                ..OpCounts::ZERO
            };
            KernelProfile {
                name: info.name.clone(),
                kind: LayerKind::Pointwise,
                geometry: UnitGeometry::PointwiseColumns,
                units: cols,
                unit_input_bytes: c_in,
                unit_output_bytes: c_out,
                unit_ops: per_col,
                weight_walk_ops: weight_walk,
                baseline_unroll: 4,
                weight_bytes: info.weight_bytes as u64,
            }
        }
        _ => {
            let macs = info.macs;
            let in_bytes = info.input.bytes() as u64;
            let out_bytes = info.output.bytes() as u64;
            let ops = OpCounts {
                mac: macs,
                load: macs + in_bytes,
                alu: out_bytes * 4,
                store: out_bytes,
                branch: out_bytes,
            };
            KernelProfile {
                name: info.name.clone(),
                kind: LayerKind::Rest,
                geometry: UnitGeometry::Monolithic,
                units: 1,
                unit_input_bytes: in_bytes,
                unit_output_bytes: out_bytes,
                unit_ops: ops,
                weight_walk_ops: OpCounts::ZERO,
                baseline_unroll: 1,
                weight_bytes: info.weight_bytes as u64,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::models::{mobilenet_v2, vww_sized};

    fn profiles_for(model: &tinynn::Model) -> Vec<KernelProfile> {
        let plan = model.plan().unwrap();
        model
            .layers()
            .zip(plan.iter())
            .map(|(nl, info)| profile(&nl.layer, info))
            .collect()
    }

    #[test]
    fn depthwise_units_are_channels() {
        let model = vww_sized(32);
        let plan = model.plan().unwrap();
        for (nl, info) in model.layers().zip(plan.iter()) {
            if let Layer::Depthwise(dw) = &nl.layer {
                let p = profile(&nl.layer, info);
                assert_eq!(p.units, dw.channels as u64);
                assert_eq!(p.unit_input_bytes, (info.input.h * info.input.w) as u64);
                assert!(p.dae_capable());
            }
        }
    }

    #[test]
    fn pointwise_units_are_columns() {
        let model = vww_sized(32);
        let plan = model.plan().unwrap();
        for (nl, info) in model.layers().zip(plan.iter()) {
            if let Layer::Pointwise(pw) = &nl.layer {
                let p = profile(&nl.layer, info);
                assert_eq!(p.units, (info.input.h * info.input.w) as u64);
                assert_eq!(p.unit_input_bytes, pw.c_in as u64);
                assert_eq!(p.unit_output_bytes, pw.c_out as u64);
                assert_eq!(p.weight_walk_ops.load, (pw.c_in * pw.c_out) as u64);
                assert!(p.dae_capable());
            }
        }
    }

    #[test]
    fn baseline_mac_totals_match_plan() {
        let model = vww_sized(32);
        let plan = model.plan().unwrap();
        for (p, info) in profiles_for(&model).iter().zip(plan.iter()) {
            assert_eq!(
                p.baseline_ops().mac,
                info.macs,
                "MAC mismatch in {}",
                info.name
            );
        }
    }

    #[test]
    fn oversized_depthwise_tensor_restreams_per_channel() {
        // Thrash condition: the per-pass footprint (one line per pixel)
        // exceeds the L1, i.e. `H·W·32 > 16 KB`. MBV2's early expanded
        // stages at 64x64 qualify; their baseline traffic must be many
        // times the tensor size.
        let model = mobilenet_v2();
        let cache = CacheConfig::stm32f767();
        let mut found_thrash = false;
        for p in profiles_for(&model) {
            if let UnitGeometry::DepthwiseChannels { tensor_lines, .. } = p.geometry {
                let t = p.baseline_traffic(&cache);
                let pass_footprint = tensor_lines.min(p.unit_input_bytes) * LINE_BYTES;
                if pass_footprint > u64::from(cache.size_bytes) && p.units >= 16 {
                    assert!(
                        t.sram_line_fills > 4 * tensor_lines,
                        "{}: expected per-channel re-streaming",
                        p.name
                    );
                    found_thrash = true;
                }
            }
        }
        assert!(found_thrash, "MBV2 must contain thrashing dw layers");
    }

    #[test]
    fn small_depthwise_tensor_streams_once() {
        let model = vww_sized(32);
        let cache = CacheConfig::stm32f767();
        for p in profiles_for(&model) {
            if let UnitGeometry::DepthwiseChannels {
                tensor_lines,
                tensor_bytes,
            } = p.geometry
            {
                if tensor_bytes <= 16 * 1024 {
                    let t = p.baseline_traffic(&cache);
                    let expected = tensor_lines + lines(p.output_bytes());
                    assert_eq!(
                        t.sram_line_fills, expected,
                        "{}: cache-resident tensor must stream once",
                        p.name
                    );
                }
            }
        }
    }

    #[test]
    fn dae_staging_cuts_depthwise_refetches() {
        // For an oversized tensor, total DAE gather traffic with g=8 must be
        // far below the baseline per-channel re-streaming.
        let model = mobilenet_v2();
        let cache = CacheConfig::stm32f767();
        let p = profiles_for(&model)
            .into_iter()
            .find(|p| {
                matches!(p.geometry, UnitGeometry::DepthwiseChannels { tensor_bytes, .. }
                    if tensor_bytes > 2 * 16 * 1024)
            })
            .expect("oversized dw layer exists");
        let baseline = p.baseline_traffic(&cache).sram_line_fills;
        let g = 8u64;
        let groups = p.units.div_ceil(g);
        let mut dae = 0u64;
        let mut remaining = p.units;
        let mut first = true;
        while remaining > 0 {
            let n = remaining.min(g);
            dae += p.dae_stage_traffic(n, first, &cache).sram_line_fills;
            dae += p.dae_compute_traffic(n, groups, &cache).sram_line_fills;
            remaining -= n;
            first = false;
        }
        assert!(
            dae * 2 < baseline,
            "{}: DAE fills {dae} should be well under baseline {baseline}",
            p.name
        );
    }

    #[test]
    fn pointwise_batching_amortizes_weight_walk() {
        let model = vww_sized(32);
        let p = profiles_for(&model)
            .into_iter()
            .find(|p| matches!(p.geometry, UnitGeometry::PointwiseColumns))
            .unwrap();
        let baseline_loads = p.baseline_ops().load;
        let g = 8u64;
        let groups = p.units.div_ceil(g);
        let mut dae_loads = 0u64;
        let mut remaining = p.units;
        while remaining > 0 {
            let n = remaining.min(g);
            dae_loads += p.dae_compute_ops(n).load;
            remaining -= n;
        }
        assert!(
            dae_loads < baseline_loads,
            "batched weight walk must reduce loads: {dae_loads} vs {baseline_loads}"
        );
        // The reduction is exactly the walk amortization: baseline walks
        // once per 4-column unroll batch, DAE once per g-column group.
        let baseline_walks = p.units.div_ceil(p.baseline_unroll);
        let saved = baseline_loads - dae_loads;
        assert_eq!(saved, (baseline_walks - groups) * p.weight_walk_ops.load);
    }

    #[test]
    fn weight_rescan_zero_when_resident() {
        let cache = CacheConfig::stm32f767();
        let p = KernelProfile {
            name: "small-pw".into(),
            kind: LayerKind::Pointwise,
            geometry: UnitGeometry::PointwiseColumns,
            units: 64,
            unit_input_bytes: 16,
            unit_output_bytes: 32,
            unit_ops: OpCounts::ZERO,
            weight_walk_ops: OpCounts::ZERO,
            baseline_unroll: 1,
            weight_bytes: 512,
        };
        assert_eq!(p.weight_rescan_traffic(64, 1, &cache), MemoryTraffic::ZERO);
    }

    #[test]
    fn weight_rescan_grows_with_batch() {
        let p = KernelProfile {
            name: "big-pw".into(),
            kind: LayerKind::Pointwise,
            geometry: UnitGeometry::PointwiseColumns,
            units: 64,
            unit_input_bytes: 256,
            unit_output_bytes: 256,
            unit_ops: OpCounts::ZERO,
            weight_walk_ops: OpCounts::ZERO,
            baseline_unroll: 1,
            weight_bytes: 20 * 1024,
        };
        let cache = CacheConfig::stm32f767();
        let small = p.weight_rescan_traffic(64, 1, &cache).flash_line_fills;
        let large = p.weight_rescan_traffic(64, 32, &cache).flash_line_fills;
        assert!(small > 0, "oversized weights must spill");
        assert!(large > small, "bigger batches must spill more");
        // Fewer rescans (DAE groups) means less rescan traffic.
        let grouped = p.weight_rescan_traffic(8, 8, &cache).flash_line_fills;
        assert!(grouped < small);
    }

    #[test]
    fn lines_rounding() {
        assert_eq!(lines(0), 0);
        assert_eq!(lines(1), 1);
        assert_eq!(lines(32), 1);
        assert_eq!(lines(33), 2);
    }

    #[test]
    fn rest_layers_are_monolithic() {
        let model = vww_sized(32);
        for p in profiles_for(&model) {
            if p.kind == LayerKind::Rest {
                assert_eq!(p.units, 1);
                assert!(!p.dae_capable());
            }
        }
    }
}
