//! Per-layer runtime profiler (the paper's monitoring mechanism).
//!
//! "We have developed and integrated a custom run-time monitoring mechanism
//! for supporting per-layer monitoring and profiling. Our mechanism relies
//! on the on-board timers of the target MCU, which are triggered in-between
//! the layers' code segments" (Sec. III-B). We reproduce that: layer
//! boundaries capture a hardware timer, and board power is sampled with the
//! INA219 model, so profiled numbers carry the quantization a real setup
//! would see.

use mcu_sim::{HardwareTimer, Machine};
use stm32_power::{Ina219, Watts};
use tinynn::{LayerKind, Model};

use crate::error::EngineError;
use crate::executor::TinyEngine;

/// One profiled layer: timer-quantized latency and sensor-quantized power.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledLayer {
    /// Layer name.
    pub name: String,
    /// Reporting kind.
    pub kind: LayerKind,
    /// Timer ticks between the layer's boundary captures.
    pub ticks: u32,
    /// Latency reconstructed from the timer, seconds.
    pub measured_secs: f64,
    /// Board power as sampled by the INA219 during the layer.
    pub measured_power: Watts,
}

/// Profile of a full inference.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Model name.
    pub model: String,
    /// Per-layer measurements.
    pub layers: Vec<ProfiledLayer>,
}

impl ModelProfile {
    /// Total measured latency (sum of quantized layer latencies).
    pub fn total_measured_secs(&self) -> f64 {
        self.layers.iter().map(|l| l.measured_secs).sum()
    }

    /// The `n` most time-consuming layers, descending — the paper's step
    /// 1A ("identify the CNN model's most computationally-intensive and
    /// time-consuming layers").
    pub fn hottest_layers(&self, n: usize) -> Vec<&ProfiledLayer> {
        let mut refs: Vec<&ProfiledLayer> = self.layers.iter().collect();
        refs.sort_by(|a, b| {
            b.measured_secs
                .partial_cmp(&a.measured_secs)
                .expect("latencies are finite")
        });
        refs.truncate(n);
        refs
    }
}

/// Runs `model` under the baseline engine while capturing per-layer timer
/// ticks and power samples.
///
/// # Errors
///
/// Propagates engine lowering errors.
pub fn profile_model(engine: &TinyEngine, model: &Model) -> Result<ModelProfile, EngineError> {
    let mut machine = Machine::new(*engine.clock());
    let timer = HardwareTimer::new(machine.sysclk());
    let mut sensor = Ina219::new(Default::default());

    let lowered = engine.lower(model)?;
    let mut layers = Vec::with_capacity(lowered.len());
    for (p, seg) in &lowered {
        let start = timer.capture(machine.elapsed_secs());
        let e_before = machine.energy();
        let t_before = machine.elapsed_secs();
        machine.run_segment(seg);
        let end = timer.capture(machine.elapsed_secs());
        let dt = machine.elapsed_secs() - t_before;
        let true_power = if dt > 0.0 {
            (machine.energy() - e_before) / dt
        } else {
            Watts::ZERO
        };
        layers.push(ProfiledLayer {
            name: p.name.clone(),
            kind: p.kind,
            ticks: end.wrapping_sub(start),
            measured_secs: timer.delta_secs(start, end),
            measured_power: sensor.sample(true_power),
        });
    }
    Ok(ModelProfile {
        model: model.name.clone(),
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::models::vww_sized;

    #[test]
    fn profile_matches_execution_within_quantization() {
        let engine = TinyEngine::new();
        let model = vww_sized(32);
        let profile = profile_model(&engine, &model).unwrap();
        let report = engine.run(&model).unwrap();
        // The timer at 216 MHz quantizes each layer to ~4.6 ns.
        let err = (profile.total_measured_secs() - report.total_time_secs).abs();
        assert!(err < 1e-6, "profiling drift {err}");
        assert_eq!(profile.layers.len(), report.layers.len());
    }

    #[test]
    fn power_samples_plausible() {
        let engine = TinyEngine::new();
        let profile = profile_model(&engine, &vww_sized(32)).unwrap();
        for l in &profile.layers {
            let mw = l.measured_power.as_mw();
            assert!((30.0..400.0).contains(&mw), "{}: {mw} mW", l.name);
        }
    }

    #[test]
    fn hottest_layers_sorted() {
        let engine = TinyEngine::new();
        let profile = profile_model(&engine, &vww_sized(32)).unwrap();
        let hot = profile.hottest_layers(5);
        assert_eq!(hot.len(), 5);
        for w in hot.windows(2) {
            assert!(w[0].measured_secs >= w[1].measured_secs);
        }
    }

    #[test]
    fn ticks_nonzero_for_real_layers() {
        let engine = TinyEngine::new();
        let profile = profile_model(&engine, &vww_sized(32)).unwrap();
        let nonzero = profile.layers.iter().filter(|l| l.ticks > 0).count();
        assert!(nonzero > profile.layers.len() / 2);
    }
}
