//! Activation memory planner.
//!
//! TinyEngine's headline feature is an in-place / ping-pong activation
//! planner that keeps peak SRAM under the MCU budget. We reproduce the
//! ping-pong variant: two activation arenas alternate as layer input and
//! output, plus the residual stash for MobileNetV2 blocks.

use std::fmt;

use tinynn::{Model, NnError};

/// STM32F767ZI SRAM available for activations (512 KB total, minus stack,
/// runtime, and I/O buffers).
pub const DEFAULT_SRAM_BUDGET: usize = 384 * 1024;

/// Placement decision for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerPlacement {
    /// Layer index in the flattened plan.
    pub index: usize,
    /// Input arena: 0 or 1 (ping-pong).
    pub input_arena: u8,
    /// Input bytes.
    pub input_bytes: usize,
    /// Output bytes.
    pub output_bytes: usize,
    /// Residual stash bytes alive during this layer.
    pub stash_bytes: usize,
}

impl LayerPlacement {
    /// SRAM alive while this layer runs.
    pub fn live_bytes(&self) -> usize {
        self.input_bytes + self.output_bytes + self.stash_bytes
    }
}

/// A resolved activation plan for a model.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryPlan {
    /// Per-layer placements in execution order.
    pub placements: Vec<LayerPlacement>,
    /// Peak live activation bytes.
    pub peak_bytes: usize,
    /// The budget the plan was checked against.
    pub budget_bytes: usize,
}

impl MemoryPlan {
    /// Whether the plan fits the budget.
    pub fn fits(&self) -> bool {
        self.peak_bytes <= self.budget_bytes
    }
}

impl fmt::Display for MemoryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "peak {} KB of {} KB budget ({} layers)",
            self.peak_bytes / 1024,
            self.budget_bytes / 1024,
            self.placements.len()
        )
    }
}

/// Error returned when a model cannot fit the SRAM budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanBudgetError {
    /// Peak bytes required.
    pub peak_bytes: usize,
    /// Budget available.
    pub budget_bytes: usize,
    /// The layer at which the peak occurs.
    pub layer: String,
}

impl fmt::Display for PlanBudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "activation peak {} KB at layer '{}' exceeds the {} KB SRAM budget",
            self.peak_bytes / 1024,
            self.layer,
            self.budget_bytes / 1024
        )
    }
}

impl std::error::Error for PlanBudgetError {}

/// Plans activation memory for `model` with the default budget.
///
/// # Errors
///
/// Propagates shape-resolution errors from the model plan.
pub fn plan_memory(model: &Model) -> Result<MemoryPlan, NnError> {
    plan_memory_with_budget(model, DEFAULT_SRAM_BUDGET)
}

/// Plans activation memory with an explicit budget.
///
/// The plan always resolves (peak may exceed the budget — check
/// [`MemoryPlan::fits`] or use the error from deployment code).
///
/// # Errors
///
/// Propagates shape-resolution errors from the model plan.
pub fn plan_memory_with_budget(model: &Model, budget: usize) -> Result<MemoryPlan, NnError> {
    let plan = model.plan()?;
    let mut placements = Vec::with_capacity(plan.len());
    let mut arena: u8 = 0;
    let mut peak = 0usize;

    // Residual stashes: for each residual block, the block input stays
    // alive until the block's last layer finishes.
    let mut layer_idx = 0usize;
    for block in &model.blocks {
        let stash = if block.residual {
            plan[layer_idx].input.bytes()
        } else {
            0
        };
        for _ in &block.layers {
            let info = &plan[layer_idx];
            let p = LayerPlacement {
                index: layer_idx,
                input_arena: arena,
                input_bytes: info.input.bytes(),
                output_bytes: info.output.bytes(),
                stash_bytes: stash,
            };
            peak = peak.max(p.live_bytes());
            placements.push(p);
            arena ^= 1;
            layer_idx += 1;
        }
    }

    Ok(MemoryPlan {
        placements,
        peak_bytes: peak,
        budget_bytes: budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::models::{mobilenet_v2, paper_models, vww_sized};

    #[test]
    fn paper_models_fit_the_budget() {
        for m in paper_models() {
            let plan = plan_memory(&m).unwrap();
            assert!(
                plan.fits(),
                "{} needs {} KB (budget {} KB)",
                m.name,
                plan.peak_bytes / 1024,
                plan.budget_bytes / 1024
            );
        }
    }

    #[test]
    fn arenas_alternate() {
        let m = vww_sized(32);
        let plan = plan_memory(&m).unwrap();
        for w in plan.placements.windows(2) {
            assert_ne!(w[0].input_arena, w[1].input_arena);
        }
    }

    #[test]
    fn peak_is_max_of_live_sets() {
        let m = vww_sized(32);
        let plan = plan_memory(&m).unwrap();
        let max_live = plan
            .placements
            .iter()
            .map(LayerPlacement::live_bytes)
            .max()
            .unwrap();
        assert_eq!(plan.peak_bytes, max_live);
    }

    #[test]
    fn residual_blocks_stash_input() {
        let m = mobilenet_v2();
        let plan = plan_memory(&m).unwrap();
        assert!(
            plan.placements.iter().any(|p| p.stash_bytes > 0),
            "MBV2 must stash residual inputs"
        );
    }

    #[test]
    fn tiny_budget_detected() {
        let m = vww_sized(32);
        let plan = plan_memory_with_budget(&m, 1024).unwrap();
        assert!(!plan.fits());
    }

    #[test]
    fn display_mentions_peak() {
        let m = vww_sized(32);
        let plan = plan_memory(&m).unwrap();
        assert!(plan.to_string().contains("KB"));
    }
}
