//! Error type for the baseline engine.

use std::error::Error;
use std::fmt;

use crate::planner::PlanBudgetError;
use tinynn::NnError;

/// Errors produced while lowering or executing a model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// A shape or weight error from the CNN substrate.
    Nn(NnError),
    /// The activation plan exceeds the SRAM budget.
    Budget(PlanBudgetError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Nn(e) => write!(f, "model error: {e}"),
            EngineError::Budget(e) => write!(f, "memory planning failed: {e}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Nn(e) => Some(e),
            EngineError::Budget(e) => Some(e),
        }
    }
}

impl From<NnError> for EngineError {
    fn from(e: NnError) -> Self {
        EngineError::Nn(e)
    }
}

impl From<PlanBudgetError> for EngineError {
    fn from(e: PlanBudgetError) -> Self {
        EngineError::Budget(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_std_error_with_source() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<EngineError>();

        let e = EngineError::Budget(PlanBudgetError {
            peak_bytes: 500 * 1024,
            budget_bytes: 384 * 1024,
            layer: "b3.pw".into(),
        });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("b3.pw"));
    }
}
