//! The `Machine`: clocked execution of segments with energy integration.
//!
//! A [`Machine`] owns the four substrate models (CPU, memory timing, power,
//! switch costs) plus the live clock state, and exposes the primitive moves
//! the engines compose: run a segment, switch the clock, idle in a
//! low-power state. Time advances and energy accumulates as a side effect,
//! tagged per phase so experiments can report breakdowns.

use std::sync::{Arc, OnceLock};

use stm32_power::{EnergyMeter, Joules, PowerModel, PowerState, Watts};
use stm32_rcc::{Hertz, PllConfig, SwitchCostModel, SysclkConfig};

use crate::cpu::CpuModel;
use crate::memory::MemoryTiming;
use crate::segment::Segment;
use crate::trace::{Timeline, TraceKind};

/// Idle strategy while waiting (e.g. for a QoS deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleMode {
    /// Spin at the current clock (TinyEngine's default iso-latency idle).
    BusyRun,
    /// WFI sleep at the current clock.
    Wfi,
    /// Aggressive clock gating + regulator low power (the paper's
    /// "TinyEngine with clock gating" baseline).
    ClockGated,
    /// Stop mode.
    Stop,
}

/// A simulated STM32F767 executing segment traces.
///
/// # Examples
///
/// ```
/// use mcu_sim::{IdleMode, Machine, OpCounts, MemoryTraffic, Segment};
/// use stm32_rcc::{ClockSource, Hertz, PllConfig, SysclkConfig};
///
/// # fn main() -> Result<(), stm32_rcc::RccError> {
/// let hfo = SysclkConfig::Pll(PllConfig::new(
///     ClockSource::hse(Hertz::mhz(50)), 25, 216, 2)?);
/// let mut machine = Machine::new(hfo);
///
/// let seg = Segment::compute(
///     "kernel",
///     OpCounts { mac: 216_000, ..OpCounts::ZERO },
///     MemoryTraffic::ZERO,
/// );
/// machine.run_segment(&seg);
/// // 216k MACs at 216 MHz is one millisecond.
/// assert!((machine.elapsed_secs() - 1e-3).abs() < 1e-9);
/// assert!(machine.energy().as_f64() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    cpu: CpuModel,
    memory: MemoryTiming,
    power: Arc<PowerModel>,
    switch_model: SwitchCostModel,
    clock: SysclkConfig,
    warm_pll: Option<PllConfig>,
    /// A PLL re-lock in flight: `(target, ready_at)`.
    pending_pll: Option<(PllConfig, f64)>,
    keep_pll_warm: bool,
    meter: EnergyMeter,
    elapsed: f64,
    switches: u64,
    relocks: u64,
    trace: Option<Timeline>,
}

impl Machine {
    /// Creates a machine with default STM32F767 models, starting at `clock`.
    ///
    /// If `clock` uses the PLL, the PLL starts locked (boot code paid that
    /// cost before our measurement window, as in the paper's setup).
    pub fn new(clock: SysclkConfig) -> Self {
        // The default power model is shared process-wide: constructing a
        // machine per DSE point must not re-allocate it.
        static DEFAULT_POWER: OnceLock<Arc<PowerModel>> = OnceLock::new();
        Machine {
            cpu: CpuModel::cortex_m7(),
            memory: MemoryTiming::stm32f767(),
            power: Arc::clone(DEFAULT_POWER.get_or_init(|| Arc::new(PowerModel::nucleo_f767zi()))),
            switch_model: SwitchCostModel::default(),
            warm_pll: clock.pll().copied(),
            pending_pll: None,
            clock,
            keep_pll_warm: true,
            meter: EnergyMeter::new(),
            elapsed: 0.0,
            switches: 0,
            relocks: 0,
            trace: None,
        }
    }

    /// Enables timeline recording (builder style). Every segment, clock
    /// switch and idle phase is appended to a [`Timeline`] retrievable via
    /// [`Machine::timeline`] / [`Machine::take_timeline`].
    pub fn with_tracing(mut self) -> Self {
        self.trace = Some(Timeline::new());
        self
    }

    /// The recorded timeline, if tracing is enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.trace.as_ref()
    }

    /// Takes the recorded timeline, leaving tracing enabled with a fresh
    /// one.
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        self.trace.replace(Timeline::new())
    }

    fn record_trace(&mut self, start: f64, dt: f64, kind: TraceKind, label: &str, power_mw: f64) {
        let mhz = self.clock.sysclk().as_mhz_f64();
        if let Some(trace) = &mut self.trace {
            trace.push(start, dt, kind, label, mhz, power_mw);
        }
    }

    /// Replaces the CPU model (builder style).
    pub fn with_cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Replaces the memory timing (builder style).
    pub fn with_memory(mut self, memory: MemoryTiming) -> Self {
        self.memory = memory;
        self
    }

    /// Replaces the power model (builder style).
    ///
    /// Accepts either an owned [`PowerModel`] or a shared
    /// `Arc<PowerModel>`; passing an `Arc` lets many machines (e.g. one per
    /// DSE point) share a single allocation instead of cloning the model.
    pub fn with_power(mut self, power: impl Into<Arc<PowerModel>>) -> Self {
        self.power = power.into();
        self
    }

    /// Replaces the switch-cost model (builder style).
    pub fn with_switch_model(mut self, model: SwitchCostModel) -> Self {
        self.switch_model = model;
        self
    }

    /// Controls whether leaving a PLL keeps it locked in the background
    /// (the paper's warm-PLL LFO/HFO scheme; default `true`). With `false`,
    /// every PLL re-entry pays the full re-lock penalty but LFO segments
    /// avoid the PLL's standby draw.
    pub fn with_keep_pll_warm(mut self, keep: bool) -> Self {
        self.keep_pll_warm = keep;
        if !keep && !self.clock.uses_pll() {
            self.warm_pll = None;
        }
        self
    }

    /// The active clock configuration.
    pub fn clock(&self) -> &SysclkConfig {
        &self.clock
    }

    /// The PLL currently locked (active or warm), if any.
    pub fn warm_pll(&self) -> Option<&PllConfig> {
        self.warm_pll.as_ref()
    }

    /// The active SYSCLK frequency.
    pub fn sysclk(&self) -> Hertz {
        self.clock.sysclk()
    }

    /// Seconds elapsed since construction.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed
    }

    /// Total energy consumed.
    pub fn energy(&self) -> Joules {
        self.meter.total_energy()
    }

    /// The full tagged energy meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Number of clock switches performed.
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    /// Number of switches that required a PLL re-lock.
    pub fn relock_count(&self) -> u64 {
        self.relocks
    }

    /// The CPU model in use.
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// The memory timing in use.
    pub fn memory(&self) -> &MemoryTiming {
        &self.memory
    }

    /// The power model in use.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The shared handle to the power model (cheap to clone into another
    /// machine via [`Machine::with_power`]).
    pub fn power_model_shared(&self) -> &Arc<PowerModel> {
        &self.power
    }

    /// The instantaneous power state while executing. A PLL that is locked
    /// in the background *or still locking* draws its full power.
    fn run_state(&self) -> PowerState {
        let background = self.warm_pll.or(self.pending_pll.map(|(p, _)| p));
        match (background, &self.clock) {
            (Some(w), SysclkConfig::Pll(p)) if *p == w => PowerState::Run(self.clock),
            (Some(w), _) => PowerState::RunWarmPll {
                sysclk: self.clock,
                warm_pll: w,
            },
            (None, _) => PowerState::Run(self.clock),
        }
    }

    /// Starts re-programming the main PLL to `target` in the background
    /// while SYSCLK keeps running from a *direct* source — the overlap
    /// trick that makes per-layer HFO changes affordable: the ≈ 200 µs
    /// re-lock proceeds during the LFO memory segment, and the subsequent
    /// [`Machine::switch_clock`] onto the PLL only stalls for whatever lock
    /// time is still outstanding.
    ///
    /// No-ops (returning `false`) when the PLL already holds `target`, a
    /// re-lock to `target` is already pending, or SYSCLK is currently
    /// driven by the PLL (the hardware cannot re-program the PLL that
    /// feeds SYSCLK).
    pub fn prepare_pll(&mut self, target: PllConfig) -> bool {
        if self.clock.uses_pll() {
            return false;
        }
        if self.warm_pll == Some(target) {
            return false;
        }
        if let Some((pending, _)) = self.pending_pll {
            if pending == target {
                return false;
            }
        }
        self.warm_pll = None;
        self.pending_pll = Some((target, self.elapsed + self.switch_model.pll_relock_secs()));
        self.relocks += 1;
        true
    }

    /// The instantaneous executing power draw.
    pub fn run_power(&self) -> Watts {
        self.power.power(&self.run_state())
    }

    /// Wall time `segment` would take at frequency `sysclk` (pure query, no
    /// state change). Exposed so DSE code can price candidate configurations
    /// without executing them.
    pub fn segment_time_at(&self, segment: &Segment, sysclk: Hertz) -> f64 {
        let cycles = self.cpu.cycles(&segment.ops);
        sysclk.cycles_to_secs(cycles) + segment.traffic.time(&self.memory, sysclk)
    }

    /// Executes `segment` at the current clock, tagging energy with the
    /// segment label. Returns the wall time consumed.
    pub fn run_segment(&mut self, segment: &Segment) -> f64 {
        self.run_segment_tagged(segment, &segment.label)
    }

    /// Executes `segment`, tagging energy with an explicit `tag`.
    pub fn run_segment_tagged(&mut self, segment: &Segment, tag: impl AsRef<str>) -> f64 {
        let dt = self.segment_time_at(segment, self.sysclk());
        let p = self.run_power();
        let start = self.elapsed;
        self.meter.record(tag, p, dt);
        self.elapsed += dt;
        self.record_trace(start, dt, TraceKind::Segment, &segment.label, p.as_mw());
        dt
    }

    /// Switches the clock to `to`, paying the modelled cost. Returns the
    /// switch latency.
    ///
    /// Warm-PLL semantics: if the target PLL parameters match the locked
    /// (active or warm) PLL, only the mux toggle is paid; otherwise the
    /// re-lock penalty applies and the newly locked PLL becomes the warm
    /// one. Leaving a PLL for a direct source keeps it warm when
    /// [`Machine::with_keep_pll_warm`] is enabled (default).
    pub fn switch_clock(&mut self, to: SysclkConfig) -> f64 {
        if to == self.clock {
            return 0.0;
        }
        // Settle a matured background re-lock first.
        if let Some((pending, ready_at)) = self.pending_pll {
            if self.elapsed >= ready_at {
                self.warm_pll = Some(pending);
                self.pending_pll = None;
            }
        }
        let dt = match (&to, self.warm_pll, self.pending_pll) {
            (SysclkConfig::Pll(target), Some(warm), _) if *target == warm => {
                self.switch_model.mux_toggle_secs()
            }
            (SysclkConfig::Pll(target), _, Some((pending, ready_at))) if *target == pending => {
                // Stall for the outstanding lock time, then toggle the mux.
                self.warm_pll = Some(pending);
                self.pending_pll = None;
                (ready_at - self.elapsed).max(0.0) + self.switch_model.mux_toggle_secs()
            }
            (SysclkConfig::Pll(_), _, _) => {
                self.relocks += 1;
                self.switch_model.pll_relock_secs()
            }
            _ => self.switch_model.mux_toggle_secs(),
        };
        // Energy during the switch: the board sits at the (cheaper) direct
        // source while the PLL re-locks; approximate with the destination's
        // run power for mux toggles and the LFO-ish source power for
        // re-locks.
        let p_during = self.run_power();
        let start = self.elapsed;
        self.meter.record("clock-switch", p_during, dt);
        self.elapsed += dt;
        self.switches += 1;
        let label = format!("switch -> {to}");
        self.record_trace(start, dt, TraceKind::ClockSwitch, &label, p_during.as_mw());

        match &to {
            SysclkConfig::Pll(p) => self.warm_pll = Some(*p),
            _ if self.keep_pll_warm => { /* keep previous warm PLL */ }
            _ => self.warm_pll = None,
        }
        self.clock = to;
        dt
    }

    /// Idles for `duration_secs` in `mode`, tagging energy as `tag`.
    ///
    /// # Panics
    ///
    /// Panics if `duration_secs` is negative or non-finite.
    pub fn idle(&mut self, duration_secs: f64, mode: IdleMode, tag: impl Into<String>) {
        assert!(
            duration_secs.is_finite() && duration_secs >= 0.0,
            "idle duration must be a non-negative finite time"
        );
        let state = match mode {
            IdleMode::BusyRun => self.run_state(),
            IdleMode::Wfi => PowerState::SleepWfi(self.clock),
            IdleMode::ClockGated => PowerState::ClockGated,
            IdleMode::Stop => PowerState::Stop,
        };
        let p = self.power.power(&state);
        let tag = tag.into();
        let start = self.elapsed;
        self.meter.record(&tag, p, duration_secs);
        self.elapsed += duration_secs;
        self.record_trace(start, duration_secs, TraceKind::Idle, &tag, p.as_mw());
    }

    /// Resets elapsed time and energy, keeping the clock state. Useful for
    /// measuring a window after a warm-up phase.
    pub fn reset_counters(&mut self) {
        if let Some((_, ready_at)) = &mut self.pending_pll {
            *ready_at -= self.elapsed;
        }
        self.meter = EnergyMeter::new();
        self.elapsed = 0.0;
        self.switches = 0;
        self.relocks = 0;
        if self.trace.is_some() {
            self.trace = Some(Timeline::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::OpCounts;
    use crate::memory::MemoryTraffic;
    use stm32_rcc::ClockSource;

    fn hfo(n: u32) -> SysclkConfig {
        SysclkConfig::Pll(PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, n, 2).unwrap())
    }

    fn lfo() -> SysclkConfig {
        SysclkConfig::hse_direct(Hertz::mhz(50))
    }

    fn mac_segment(macs: u64) -> Segment {
        Segment::compute(
            "mac",
            OpCounts {
                mac: macs,
                ..OpCounts::ZERO
            },
            MemoryTraffic::ZERO,
        )
    }

    #[test]
    fn compute_time_scales_with_frequency() {
        let seg = mac_segment(1_000_000);
        let mut fast = Machine::new(hfo(216));
        let mut slow = Machine::new(hfo(100));
        let tf = fast.run_segment(&seg);
        let ts = slow.run_segment(&seg);
        assert!((ts / tf - 2.16).abs() < 1e-6);
    }

    #[test]
    fn energy_is_power_times_time() {
        let seg = mac_segment(216_000);
        let mut m = Machine::new(hfo(216));
        let p = m.run_power();
        let dt = m.run_segment(&seg);
        assert!((m.energy().as_f64() - p.as_f64() * dt).abs() < 1e-15);
    }

    #[test]
    fn warm_pll_switch_is_cheap_relock_is_not() {
        let mut m = Machine::new(hfo(216));
        // HFO -> LFO: mux toggle, PLL stays warm.
        let down = m.switch_clock(lfo());
        assert!(down < 10e-6);
        assert_eq!(m.relock_count(), 0);
        assert!(m.warm_pll().is_some());
        // LFO -> same HFO: mux toggle again.
        let up = m.switch_clock(hfo(216));
        assert!(up < 10e-6);
        assert_eq!(m.relock_count(), 0);
        // HFO(216) -> HFO(150): divider change, re-lock.
        let relock = m.switch_clock(hfo(150));
        assert!((relock - 200e-6).abs() < 1e-12);
        assert_eq!(m.relock_count(), 1);
        assert_eq!(m.switch_count(), 3);
    }

    #[test]
    fn switch_to_same_clock_is_free() {
        let mut m = Machine::new(hfo(216));
        assert_eq!(m.switch_clock(hfo(216)), 0.0);
        assert_eq!(m.switch_count(), 0);
        assert_eq!(m.elapsed_secs(), 0.0);
    }

    #[test]
    fn lfo_run_power_includes_warm_pll() {
        let mut m = Machine::new(hfo(216));
        m.switch_clock(lfo());
        let warm_power = m.run_power();

        let cold = Machine::new(lfo());
        let cold_power = cold.run_power();
        assert!(
            warm_power > cold_power,
            "warm PLL must add standby power during LFO"
        );
    }

    #[test]
    fn without_warm_pll_reentry_relocks() {
        let mut m = Machine::new(hfo(216)).with_keep_pll_warm(false);
        m.switch_clock(lfo());
        assert!(m.warm_pll().is_none());
        let up = m.switch_clock(hfo(216));
        assert!((up - 200e-6).abs() < 1e-12, "cold re-entry must re-lock");
        assert_eq!(m.relock_count(), 1);
    }

    #[test]
    fn idle_modes_ordered_by_power() {
        let dur = 0.01;
        let energies: Vec<f64> = [
            IdleMode::BusyRun,
            IdleMode::Wfi,
            IdleMode::ClockGated,
            IdleMode::Stop,
        ]
        .into_iter()
        .map(|mode| {
            let mut m = Machine::new(hfo(216));
            m.idle(dur, mode, "idle");
            m.energy().as_f64()
        })
        .collect();
        for w in energies.windows(2) {
            assert!(
                w[0] > w[1],
                "idle energy must strictly decrease: {energies:?}"
            );
        }
    }

    #[test]
    fn memory_segment_cheaper_at_lfo_in_energy() {
        // The core DAE trade: a fill-dominated segment at LFO must cost
        // less energy than at HFO, with only a modest time penalty.
        let seg = Segment::memory(
            "stage",
            OpCounts {
                load: 1000,
                alu: 500,
                ..OpCounts::ZERO
            },
            MemoryTraffic {
                sram_line_fills: 2000,
                flash_line_fills: 500,
                cache_hits: 0,
                sram_uncached: 0,
            },
        );
        let mut hi = Machine::new(hfo(216));
        let t_hi = hi.run_segment(&seg);
        let e_hi = hi.energy().as_f64();

        let mut lo = Machine::new(hfo(216));
        lo.switch_clock(lfo());
        lo.reset_counters();
        let t_lo = lo.run_segment(&seg);
        let e_lo = lo.energy().as_f64();

        assert!(e_lo < e_hi, "LFO energy {e_lo} must undercut HFO {e_hi}");
        assert!(t_lo / t_hi < 2.5, "time penalty must stay modest");
    }

    #[test]
    fn elapsed_accumulates_across_moves() {
        let mut m = Machine::new(hfo(216));
        m.run_segment(&mac_segment(216_000));
        m.switch_clock(lfo());
        m.idle(1e-3, IdleMode::ClockGated, "wait");
        let expected = 1e-3 + SwitchCostModel::DEFAULT_MUX_TOGGLE + 1e-3;
        assert!((m.elapsed_secs() - expected).abs() < 1e-9);
    }

    #[test]
    fn reset_counters_keeps_clock_state() {
        let mut m = Machine::new(hfo(216));
        m.switch_clock(lfo());
        m.run_segment(&mac_segment(1000));
        m.reset_counters();
        assert_eq!(m.elapsed_secs(), 0.0);
        assert_eq!(m.energy(), Joules::ZERO);
        assert_eq!(m.clock(), &lfo());
        assert!(m.warm_pll().is_some());
    }

    #[test]
    fn tracing_records_everything() {
        let mut m = Machine::new(hfo(216)).with_tracing();
        m.run_segment(&mac_segment(216_000));
        m.switch_clock(lfo());
        m.idle(1e-3, IdleMode::ClockGated, "wait");
        let tl = m.timeline().expect("tracing enabled");
        assert_eq!(tl.len(), 3);
        assert!((tl.time_in(crate::trace::TraceKind::Segment) - 1e-3).abs() < 1e-9);
        assert!(tl.to_csv().contains("wait"));
        // take_timeline leaves a fresh recorder behind.
        let taken = m.take_timeline().expect("taken");
        assert_eq!(taken.len(), 3);
        assert_eq!(m.timeline().map(|t| t.len()), Some(0));
    }

    #[test]
    fn tracing_disabled_by_default() {
        let mut m = Machine::new(hfo(216));
        m.run_segment(&mac_segment(1000));
        assert!(m.timeline().is_none());
    }

    #[test]
    fn segment_time_query_matches_execution() {
        let seg = Segment::compute(
            "q",
            OpCounts {
                mac: 50_000,
                alu: 10_000,
                ..OpCounts::ZERO
            },
            MemoryTraffic {
                cache_hits: 5_000,
                sram_line_fills: 100,
                ..MemoryTraffic::ZERO
            },
        );
        let mut m = Machine::new(hfo(150));
        let predicted = m.segment_time_at(&seg, Hertz::mhz(150));
        let actual = m.run_segment(&seg);
        assert!((predicted - actual).abs() < 1e-15);
    }
}
