//! Execution segments: the unit of work the machine prices.
//!
//! Engines (the TinyEngine baseline and the DAE transform) lower each layer
//! into a sequence of segments. A segment bundles the operation counts the
//! core must retire and the memory traffic it generates; the
//! [`crate::machine::Machine`] prices it at the active clock and integrates
//! energy. The DAE transform is, at this level, precisely a re-partitioning
//! of one layer into alternating *memory-bound* and *compute-bound*
//! segments.

use crate::cpu::OpCounts;
use crate::memory::MemoryTraffic;

/// Coarse classification of a segment, used for reporting and for the
/// LFO/HFO assignment in the DAE scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentClass {
    /// Dominated by arithmetic: runs at HFO in the DAE scheme.
    Compute,
    /// Dominated by buffer staging: runs at LFO in the DAE scheme.
    Memory,
    /// Anything else (layer prologue, activation, reshuffling).
    Other,
}

/// One contiguous region of execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Human-readable label (layer name, phase), used in energy breakdowns.
    pub label: String,
    /// Classification for LFO/HFO assignment.
    pub class: SegmentClass,
    /// Operations the core retires in this segment.
    pub ops: OpCounts,
    /// Memory traffic the segment generates.
    pub traffic: MemoryTraffic,
}

impl Segment {
    /// Creates a compute-class segment.
    pub fn compute(label: impl Into<String>, ops: OpCounts, traffic: MemoryTraffic) -> Self {
        Segment {
            label: label.into(),
            class: SegmentClass::Compute,
            ops,
            traffic,
        }
    }

    /// Creates a memory-class segment.
    pub fn memory(label: impl Into<String>, ops: OpCounts, traffic: MemoryTraffic) -> Self {
        Segment {
            label: label.into(),
            class: SegmentClass::Memory,
            ops,
            traffic,
        }
    }

    /// Creates an unclassified segment.
    pub fn other(label: impl Into<String>, ops: OpCounts, traffic: MemoryTraffic) -> Self {
        Segment {
            label: label.into(),
            class: SegmentClass::Other,
            ops,
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_class() {
        let s = Segment::compute("c", OpCounts::ZERO, MemoryTraffic::ZERO);
        assert_eq!(s.class, SegmentClass::Compute);
        let s = Segment::memory("m", OpCounts::ZERO, MemoryTraffic::ZERO);
        assert_eq!(s.class, SegmentClass::Memory);
        let s = Segment::other("o", OpCounts::ZERO, MemoryTraffic::ZERO);
        assert_eq!(s.class, SegmentClass::Other);
        assert_eq!(s.label, "o");
    }
}
