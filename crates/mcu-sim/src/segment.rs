//! Execution segments: the unit of work the machine prices.
//!
//! Engines (the TinyEngine baseline and the DAE transform) lower each layer
//! into a sequence of segments. A segment bundles the operation counts the
//! core must retire and the memory traffic it generates; the
//! [`crate::machine::Machine`] prices it at the active clock and integrates
//! energy. The DAE transform is, at this level, precisely a re-partitioning
//! of one layer into alternating *memory-bound* and *compute-bound*
//! segments.
//!
//! Segments are designed to be *compiled once and replayed many times*:
//! the label is an interned [`Arc<str>`], so cloning a segment (or a whole
//! schedule) never re-allocates label storage, and
//! [`crate::machine::Machine::run_segment`] takes segments by reference.

use std::sync::Arc;

use crate::cpu::OpCounts;
use crate::memory::MemoryTraffic;

/// Coarse classification of a segment, used for reporting and for the
/// LFO/HFO assignment in the DAE scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentClass {
    /// Dominated by arithmetic: runs at HFO in the DAE scheme.
    Compute,
    /// Dominated by buffer staging: runs at LFO in the DAE scheme.
    Memory,
    /// Anything else (layer prologue, activation, reshuffling).
    Other,
}

/// One contiguous region of execution.
///
/// The label is an interned `Arc<str>`: cloning a segment shares the label
/// storage, which is what makes compiled schedules cheap to reuse across
/// many machine replays.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Human-readable label (layer name, phase), used in energy breakdowns.
    pub label: Arc<str>,
    /// Classification for LFO/HFO assignment.
    pub class: SegmentClass,
    /// Operations the core retires in this segment.
    pub ops: OpCounts,
    /// Memory traffic the segment generates.
    pub traffic: MemoryTraffic,
}

impl Segment {
    /// Creates a compute-class segment.
    pub fn compute(label: impl Into<Arc<str>>, ops: OpCounts, traffic: MemoryTraffic) -> Self {
        Segment {
            label: label.into(),
            class: SegmentClass::Compute,
            ops,
            traffic,
        }
    }

    /// Creates a memory-class segment.
    pub fn memory(label: impl Into<Arc<str>>, ops: OpCounts, traffic: MemoryTraffic) -> Self {
        Segment {
            label: label.into(),
            class: SegmentClass::Memory,
            ops,
            traffic,
        }
    }

    /// Creates an unclassified segment.
    pub fn other(label: impl Into<Arc<str>>, ops: OpCounts, traffic: MemoryTraffic) -> Self {
        Segment {
            label: label.into(),
            class: SegmentClass::Other,
            ops,
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_class() {
        let s = Segment::compute("c", OpCounts::ZERO, MemoryTraffic::ZERO);
        assert_eq!(s.class, SegmentClass::Compute);
        let s = Segment::memory("m", OpCounts::ZERO, MemoryTraffic::ZERO);
        assert_eq!(s.class, SegmentClass::Memory);
        let s = Segment::other("o", OpCounts::ZERO, MemoryTraffic::ZERO);
        assert_eq!(s.class, SegmentClass::Other);
        assert_eq!(&*s.label, "o");
    }
}
