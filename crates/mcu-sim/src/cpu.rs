//! Instruction-class CPU timing model of the Cortex-M7 core.
//!
//! The M7 is a dual-issue, in-order, 6-stage core. We do not model the
//! pipeline; instead each *instruction class* carries an effective
//! cycles-per-instruction, and dual-issue is captured by pairing ALU
//! operations with loads/MACs up to an issue-width bound. This level of
//! detail is sufficient for the paper's purposes: relative compute cost of
//! convolution kernels and how it scales with the clock.

use std::ops::{Add, AddAssign};

/// Counts of executed operations by class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Plain integer ALU operations (add/sub/shift/logic, address math).
    pub alu: u64,
    /// Multiply-accumulate operations (`SMLAD` and friends).
    pub mac: u64,
    /// Loads that hit in the L1/registers path (cache-miss cost is priced
    /// separately by the memory model).
    pub load: u64,
    /// Stores.
    pub store: u64,
    /// Branches (loop back-edges, calls).
    pub branch: u64,
}

impl OpCounts {
    /// No operations.
    pub const ZERO: OpCounts = OpCounts {
        alu: 0,
        mac: 0,
        load: 0,
        store: 0,
        branch: 0,
    };

    /// Total dynamic operation count.
    pub fn total(&self) -> u64 {
        self.alu + self.mac + self.load + self.store + self.branch
    }

    /// Scales every class by `n` (e.g. per-pixel counts × pixels).
    pub fn scaled(&self, n: u64) -> OpCounts {
        OpCounts {
            alu: self.alu * n,
            mac: self.mac * n,
            load: self.load * n,
            store: self.store * n,
            branch: self.branch * n,
        }
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            alu: self.alu + rhs.alu,
            mac: self.mac + rhs.mac,
            load: self.load + rhs.load,
            store: self.store + rhs.store,
            branch: self.branch + rhs.branch,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

/// Effective per-class issue costs of the core, in cycles × 1000
/// (milli-cycles) to keep the model integral and deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuModel {
    /// Milli-cycles per ALU op after dual-issue pairing.
    pub alu_mcycles: u64,
    /// Milli-cycles per MAC op (SMLAD sustains ~1/cycle).
    pub mac_mcycles: u64,
    /// Milli-cycles per load (hit).
    pub load_mcycles: u64,
    /// Milli-cycles per store.
    pub store_mcycles: u64,
    /// Milli-cycles per branch (folded + predictor).
    pub branch_mcycles: u64,
}

impl CpuModel {
    /// Calibrated Cortex-M7 model: dual-issue lets ALU ops pair with memory
    /// and MAC ops, so their effective cost is roughly half a cycle.
    pub const fn cortex_m7() -> Self {
        CpuModel {
            alu_mcycles: 550,
            mac_mcycles: 1000,
            load_mcycles: 1000,
            store_mcycles: 1000,
            branch_mcycles: 1500,
        }
    }

    /// Cycles needed to retire `ops` (rounded up from milli-cycles).
    ///
    /// ```
    /// use mcu_sim::cpu::{CpuModel, OpCounts};
    ///
    /// let cpu = CpuModel::cortex_m7();
    /// let ops = OpCounts { mac: 1000, ..OpCounts::ZERO };
    /// assert_eq!(cpu.cycles(&ops), 1000);
    /// ```
    pub fn cycles(&self, ops: &OpCounts) -> u64 {
        let mcycles = ops.alu * self.alu_mcycles
            + ops.mac * self.mac_mcycles
            + ops.load * self.load_mcycles
            + ops.store * self.store_mcycles
            + ops.branch * self.branch_mcycles;
        mcycles.div_ceil(1000)
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::cortex_m7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_throughput_is_one_per_cycle() {
        let cpu = CpuModel::cortex_m7();
        let ops = OpCounts {
            mac: 12345,
            ..OpCounts::ZERO
        };
        assert_eq!(cpu.cycles(&ops), 12345);
    }

    #[test]
    fn alu_benefits_from_dual_issue() {
        let cpu = CpuModel::cortex_m7();
        let ops = OpCounts {
            alu: 1000,
            ..OpCounts::ZERO
        };
        assert!(cpu.cycles(&ops) < 1000, "ALU should pair under dual-issue");
    }

    #[test]
    fn cycles_additive() {
        let cpu = CpuModel::cortex_m7();
        let a = OpCounts {
            mac: 100,
            load: 50,
            ..OpCounts::ZERO
        };
        let b = OpCounts {
            alu: 2000,
            branch: 10,
            ..OpCounts::ZERO
        };
        // Rounding makes this ≤ 1 cycle off; milli-cycle bookkeeping keeps
        // it exact when components are multiples of 1000 m-cycles.
        let sum = cpu.cycles(&(a + b));
        assert!(sum >= cpu.cycles(&a) + cpu.cycles(&b) - 1);
        assert!(sum <= cpu.cycles(&a) + cpu.cycles(&b) + 1);
    }

    #[test]
    fn scaled_counts() {
        let per_pixel = OpCounts {
            mac: 9,
            alu: 4,
            load: 9,
            store: 1,
            branch: 1,
        };
        let layer = per_pixel.scaled(1000);
        assert_eq!(layer.mac, 9000);
        assert_eq!(layer.total(), per_pixel.total() * 1000);
    }

    #[test]
    fn zero_ops_zero_cycles() {
        assert_eq!(CpuModel::cortex_m7().cycles(&OpCounts::ZERO), 0);
    }
}
