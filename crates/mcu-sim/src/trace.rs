//! Execution timeline recording and CSV export.
//!
//! A [`Timeline`] captures what the machine did and when — segment runs,
//! clock switches, idle phases — with the active frequency and power of
//! each interval. Useful for debugging DVFS schedules and for visualising
//! the LFO/HFO alternation the DAE transform produces.

use std::fmt;
use std::fmt::Write as _;

/// The kind of interval recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A segment execution.
    Segment,
    /// A clock switch (mux toggle or PLL re-lock).
    ClockSwitch,
    /// An idle phase.
    Idle,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceKind::Segment => write!(f, "segment"),
            TraceKind::ClockSwitch => write!(f, "switch"),
            TraceKind::Idle => write!(f, "idle"),
        }
    }
}

/// One recorded interval.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Interval start, seconds since machine construction/reset.
    pub start_secs: f64,
    /// Interval length, seconds.
    pub duration_secs: f64,
    /// What happened.
    pub kind: TraceKind,
    /// Label (segment label, idle tag, or switch description).
    pub label: String,
    /// Active SYSCLK in MHz during the interval.
    pub sysclk_mhz: f64,
    /// Average power in mW during the interval.
    pub power_mw: f64,
}

/// An append-only execution timeline.
///
/// # Examples
///
/// ```
/// use mcu_sim::trace::{Timeline, TraceKind};
///
/// let mut tl = Timeline::new();
/// tl.push(0.0, 1e-3, TraceKind::Segment, "conv", 216.0, 280.0);
/// tl.push(1e-3, 1e-6, TraceKind::ClockSwitch, "to LFO", 216.0, 280.0);
/// assert_eq!(tl.len(), 2);
/// assert!(tl.to_csv().starts_with("start_s,duration_s,kind,label"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Timeline {
    events: Vec<TraceEvent>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Appends an interval.
    pub fn push(
        &mut self,
        start_secs: f64,
        duration_secs: f64,
        kind: TraceKind,
        label: impl Into<String>,
        sysclk_mhz: f64,
        power_mw: f64,
    ) {
        self.events.push(TraceEvent {
            start_secs,
            duration_secs,
            kind,
            label: label.into(),
            sysclk_mhz,
            power_mw,
        });
    }

    /// Number of recorded intervals.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded intervals in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total time covered by intervals of `kind`.
    pub fn time_in(&self, kind: TraceKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.duration_secs)
            .sum()
    }

    /// Total time spent at a given frequency (MHz, exact match).
    pub fn time_at_mhz(&self, mhz: f64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.sysclk_mhz == mhz)
            .map(|e| e.duration_secs)
            .sum()
    }

    /// Renders the timeline as CSV (header + one row per interval).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("start_s,duration_s,kind,label,sysclk_mhz,power_mw\n");
        for e in &self.events {
            let _ = writeln!(
                out,
                "{:.9},{:.9},{},{},{:.3},{:.3}",
                e.start_secs,
                e.duration_secs,
                e.kind,
                e.label.replace(',', ";"),
                e.sysclk_mhz,
                e.power_mw
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let mut tl = Timeline::new();
        tl.push(0.0, 2e-3, TraceKind::Segment, "dw/mem", 50.0, 140.0);
        tl.push(2e-3, 1e-6, TraceKind::ClockSwitch, "LFO->HFO", 50.0, 140.0);
        tl.push(2.001e-3, 3e-3, TraceKind::Segment, "dw/comp", 216.0, 290.0);
        tl.push(5.001e-3, 1e-3, TraceKind::Idle, "qos-idle", 216.0, 12.0);
        tl
    }

    #[test]
    fn aggregations() {
        let tl = sample();
        assert_eq!(tl.len(), 4);
        assert!((tl.time_in(TraceKind::Segment) - 5e-3).abs() < 1e-12);
        assert!((tl.time_in(TraceKind::ClockSwitch) - 1e-6).abs() < 1e-15);
        assert!((tl.time_at_mhz(50.0) - (2e-3 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn csv_escapes_and_is_line_per_event() {
        let mut tl = sample();
        tl.push(6e-3, 1e-6, TraceKind::Idle, "a,b", 50.0, 1.0);
        let csv = tl.to_csv();
        assert_eq!(csv.lines().count(), 6); // header + 5 events
        assert!(csv.contains("a;b"), "commas in labels must be escaped");
    }

    #[test]
    fn empty_timeline() {
        let tl = Timeline::new();
        assert!(tl.is_empty());
        assert_eq!(tl.to_csv().lines().count(), 1);
        assert_eq!(tl.time_in(TraceKind::Segment), 0.0);
    }
}
