//! L1 data-cache model (16 KB, 4-way, 32-byte lines on the Cortex-M7).
//!
//! Two views of the same hardware are provided:
//!
//! * [`Cache`] — a stateful, line-granular, true-LRU cache used by tests and
//!   fine-grained simulations;
//! * [`reuse_hit_ratio`] — the closed-form estimate the inference engines use
//!   to price a DAE compute segment: once `g` channel buffers have been
//!   staged, the fraction of the working set that is still resident when the
//!   compute phase re-reads it.
//!
//! The closed form is what makes the paper's "very high buffer size can lead
//! the cache misses to skyrocket" observation reproducible: as the DAE
//! granularity grows past the cache capacity, reuse hits collapse.

use std::fmt;

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// The Cortex-M7 L1 D-cache of the STM32F767: 16 KB, 4-way, 32 B lines.
    pub const fn stm32f767() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 32,
            ways: 4,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes or a capacity not
    /// divisible by `line_bytes × ways`).
    pub fn sets(&self) -> u32 {
        assert!(
            self.size_bytes > 0 && self.line_bytes > 0 && self.ways > 0,
            "cache geometry fields must be non-zero"
        );
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(
            self.size_bytes % self.line_bytes,
            0,
            "capacity must be a whole number of lines"
        );
        assert_eq!(
            lines % self.ways,
            0,
            "line count must be divisible by associativity"
        );
        lines / self.ways
    }

    /// Number of lines.
    pub fn lines(&self) -> u32 {
        self.size_bytes / self.line_bytes
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::stm32f767()
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses that required a line fill.
    pub misses: u64,
    /// Fills that evicted a valid line.
    pub evictions: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 when no access happened.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit)",
            self.hits,
            self.misses,
            self.hit_ratio() * 100.0
        )
    }
}

/// A stateful set-associative LRU cache operating on byte addresses.
///
/// # Examples
///
/// ```
/// use mcu_sim::cache::{Cache, CacheConfig};
///
/// let mut cache = Cache::new(CacheConfig::stm32f767());
/// cache.access_byte_range(0x2000_0000, 1024); // first touch: misses
/// cache.reset_stats();
/// cache.access_byte_range(0x2000_0000, 1024); // resident: all hits
/// assert_eq!(cache.stats().misses, 0);
/// assert_eq!(cache.stats().hits, 1024 / 32);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[s]` holds resident line tags in LRU order (front = LRU).
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets() as usize;
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.ways as usize); sets],
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the counters, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates the whole cache and zeroes the counters.
    pub fn invalidate(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
    }

    /// Accesses one line by *line index* (byte address / line size).
    /// Returns `true` on a hit.
    pub fn access_line(&mut self, line_index: u64) -> bool {
        let set_count = self.sets.len() as u64;
        let set_idx = (line_index % set_count) as usize;
        let tag = line_index / set_count;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.push(t);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.config.ways as usize {
                set.remove(0);
                self.stats.evictions += 1;
            }
            set.push(tag);
            self.stats.misses += 1;
            false
        }
    }

    /// Accesses one byte address (the whole containing line).
    /// Returns `true` on a hit.
    pub fn access(&mut self, byte_addr: u64) -> bool {
        self.access_line(byte_addr / u64::from(self.config.line_bytes))
    }

    /// Sequentially touches `len` bytes starting at `base`, one access per
    /// line. Returns the number of misses incurred.
    pub fn access_byte_range(&mut self, base: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let line = u64::from(self.config.line_bytes);
        let first = base / line;
        let last = (base + len - 1) / line;
        let mut misses = 0;
        for l in first..=last {
            if !self.access_line(l) {
                misses += 1;
            }
        }
        misses
    }
}

/// Closed-form reuse estimate for a buffered working set.
///
/// After a DAE memory segment stages `working_set_bytes` (buffers + weights)
/// through the cache, the compute segment re-reads that data. If it fits,
/// every re-read hits; once it exceeds capacity, an LRU cache streaming over
/// the set retains only `capacity / working_set` of it.
///
/// Returns the expected hit ratio in `[0, 1]` of the *reuse* pass.
///
/// ```
/// use mcu_sim::cache::{reuse_hit_ratio, CacheConfig};
///
/// let cfg = CacheConfig::stm32f767();
/// assert_eq!(reuse_hit_ratio(8 * 1024, &cfg), 1.0);          // fits
/// assert!(reuse_hit_ratio(64 * 1024, &cfg) < 0.3);           // thrashes
/// ```
pub fn reuse_hit_ratio(working_set_bytes: u64, config: &CacheConfig) -> f64 {
    let capacity = u64::from(config.size_bytes);
    if working_set_bytes == 0 {
        return 1.0;
    }
    if working_set_bytes <= capacity {
        1.0
    } else {
        // Cyclic-streaming LRU over a set larger than capacity retains a
        // `capacity / working_set` fraction by the time the pass wraps.
        capacity as f64 / working_set_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let cfg = CacheConfig::stm32f767();
        assert_eq!(cfg.lines(), 512);
        assert_eq!(cfg.sets(), 128);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_geometry_rejected() {
        let cfg = CacheConfig {
            size_bytes: 0,
            line_bytes: 32,
            ways: 4,
        };
        let _ = cfg.sets();
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::stm32f767());
        assert!(!c.access(0x2000_0000));
        assert!(c.access(0x2000_0000));
        assert!(c.access(0x2000_001F)); // same 32-byte line
        assert!(!c.access(0x2000_0020)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_within_set() {
        // Direct-mapped-ish test: 2 ways, 1 set.
        let cfg = CacheConfig {
            size_bytes: 64,
            line_bytes: 32,
            ways: 2,
        };
        let mut c = Cache::new(cfg);
        assert_eq!(cfg.sets(), 1);
        c.access_line(0);
        c.access_line(1);
        assert!(c.access_line(0)); // 0 becomes MRU, 1 is LRU
        c.access_line(2); // evicts 1
        assert!(c.access_line(0), "0 must survive (was MRU)");
        assert!(!c.access_line(1), "1 must have been evicted");
        assert!(c.stats().evictions >= 2);
    }

    #[test]
    fn working_set_within_capacity_all_hits_on_reuse() {
        let cfg = CacheConfig::stm32f767();
        let mut c = Cache::new(cfg);
        c.access_byte_range(0, 16 * 1024);
        c.reset_stats();
        let misses = c.access_byte_range(0, 16 * 1024);
        assert_eq!(misses, 0, "16 KB working set must be fully resident");
        assert_eq!(c.stats().hit_ratio(), 1.0);
    }

    #[test]
    fn oversized_working_set_thrashes() {
        let cfg = CacheConfig::stm32f767();
        let mut c = Cache::new(cfg);
        let ws = 64 * 1024;
        c.access_byte_range(0, ws);
        c.reset_stats();
        let misses = c.access_byte_range(0, ws);
        let total = ws / 32;
        // Cyclic streaming over 4x capacity with LRU: everything misses.
        assert_eq!(misses, total, "LRU cyclic streaming should fully thrash");
    }

    #[test]
    fn analytic_matches_stateful_at_extremes() {
        let cfg = CacheConfig::stm32f767();
        // Fits: analytic 1.0, stateful 100% hits (verified above).
        assert_eq!(reuse_hit_ratio(16 * 1024, &cfg), 1.0);
        // 4x capacity: analytic 0.25 is the *retention* bound; the stateful
        // LRU is worse (0) because of cyclic eviction — the analytic form is
        // intentionally the optimistic envelope used for pricing, and both
        // agree that reuse collapses.
        assert!(reuse_hit_ratio(64 * 1024, &cfg) <= 0.25);
    }

    #[test]
    fn analytic_monotone_decreasing() {
        let cfg = CacheConfig::stm32f767();
        let mut last = f64::INFINITY;
        for ws in [1u64 << 10, 8 << 10, 16 << 10, 24 << 10, 48 << 10, 96 << 10] {
            let r = reuse_hit_ratio(ws, &cfg);
            assert!(r <= last);
            assert!((0.0..=1.0).contains(&r));
            last = r;
        }
    }

    #[test]
    fn zero_len_range_noop() {
        let mut c = Cache::new(CacheConfig::stm32f767());
        assert_eq!(c.access_byte_range(0x1000, 0), 0);
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn invalidate_clears_contents() {
        let mut c = Cache::new(CacheConfig::stm32f767());
        c.access_byte_range(0, 1024);
        c.invalidate();
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.access(0), "post-invalidate access must miss");
    }

    #[test]
    fn hits_bounded_by_accesses() {
        let mut c = Cache::new(CacheConfig::stm32f767());
        for i in 0..10_000u64 {
            c.access_line(i % 700);
        }
        let s = c.stats();
        assert!(s.hits <= s.accesses());
        assert!(s.misses <= s.accesses());
        assert_eq!(s.hits + s.misses, s.accesses());
    }
}
