//! Memory-system timing: SRAM and flash access costs vs frequency.
//!
//! The decisive physics for DAE-enabled DVFS is that *memory time does not
//! scale with the core clock* the way compute time does:
//!
//! * an embedded-**flash** access takes `1 + WS(f)` core cycles, and the
//!   wait-state ladder grows with frequency, so its wall time is nearly
//!   constant (≈ 37–40 ns) across the whole DVFS range;
//! * an **AXI SRAM** line fill pays a fixed bus/arbitration latency plus a
//!   couple of core-clock cycles, so it scales only weakly;
//! * a **cache hit** or TCM access is a pure core-cycle cost and scales
//!   fully.
//!
//! Consequently, running a memory-bound segment at the LFO frequency wastes
//! little time but saves a lot of power — the heart of the paper.

use stm32_rcc::{Hertz, WaitStateLadder};

/// Timing parameters of the memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryTiming {
    /// Fixed (frequency-independent) latency of an SRAM line fill, seconds.
    pub sram_fill_fixed: f64,
    /// Core cycles spent per SRAM line fill on top of the fixed latency.
    pub sram_fill_cycles: u64,
    /// Flash accesses (128-bit reads) needed per 32-byte line fill.
    pub flash_reads_per_line: u64,
    /// Core cycles per cache hit / TCM access.
    pub hit_cycles: u64,
    /// Fixed latency of a single uncached SRAM access, seconds.
    pub sram_single_fixed: f64,
    /// Flash wait-state ladder (band width and cap are board parameters).
    pub flash_ladder: WaitStateLadder,
}

impl MemoryTiming {
    /// Calibrated STM32F767 memory system.
    pub const fn stm32f767() -> Self {
        MemoryTiming {
            sram_fill_fixed: 30e-9,
            sram_fill_cycles: 2,
            flash_reads_per_line: 2,
            hit_cycles: 1,
            sram_single_fixed: 12e-9,
            flash_ladder: WaitStateLadder::stm32f767(),
        }
    }

    /// Replaces the flash wait-state ladder (builder style), the knob a
    /// non-F767 target uses to describe its flash interface.
    pub const fn with_flash_ladder(mut self, ladder: WaitStateLadder) -> Self {
        self.flash_ladder = ladder;
        self
    }

    /// Wall time of one cache-line fill from AXI SRAM at `sysclk`.
    pub fn sram_fill_time(&self, sysclk: Hertz) -> f64 {
        self.sram_fill_fixed + sysclk.cycles_to_secs(self.sram_fill_cycles)
    }

    /// Wall time of one cache-line fill from embedded flash at `sysclk`.
    ///
    /// Uses the wait-state ladder: `flash_reads_per_line × (1 + WS(f)) / f`.
    pub fn flash_fill_time(&self, sysclk: Hertz) -> f64 {
        let per_access = self.flash_ladder.latency(sysclk).access_cycles();
        sysclk.cycles_to_secs(self.flash_reads_per_line * per_access)
    }

    /// Wall time of one cache hit at `sysclk`.
    pub fn hit_time(&self, sysclk: Hertz) -> f64 {
        sysclk.cycles_to_secs(self.hit_cycles)
    }

    /// Wall time of one uncached single SRAM access at `sysclk`.
    pub fn sram_single_time(&self, sysclk: Hertz) -> f64 {
        self.sram_single_fixed + sysclk.cycles_to_secs(1)
    }
}

impl Default for MemoryTiming {
    fn default() -> Self {
        MemoryTiming::stm32f767()
    }
}

/// Aggregate memory traffic of an execution segment.
///
/// Engines derive these counts from the access pattern of a kernel (using
/// [`crate::cache`] for the hit/miss split); the [`crate::machine::Machine`]
/// then prices them at the active frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryTraffic {
    /// L1 cache hits (and TCM accesses).
    pub cache_hits: u64,
    /// Line fills served from AXI SRAM.
    pub sram_line_fills: u64,
    /// Line fills served from embedded flash.
    pub flash_line_fills: u64,
    /// Uncached single-word SRAM accesses (e.g. DMA-visible buffers).
    pub sram_uncached: u64,
}

impl MemoryTraffic {
    /// No traffic.
    pub const ZERO: MemoryTraffic = MemoryTraffic {
        cache_hits: 0,
        sram_line_fills: 0,
        flash_line_fills: 0,
        sram_uncached: 0,
    };

    /// Total wall time of this traffic at `sysclk`.
    pub fn time(&self, timing: &MemoryTiming, sysclk: Hertz) -> f64 {
        self.cache_hits as f64 * timing.hit_time(sysclk)
            + self.sram_line_fills as f64 * timing.sram_fill_time(sysclk)
            + self.flash_line_fills as f64 * timing.flash_fill_time(sysclk)
            + self.sram_uncached as f64 * timing.sram_single_time(sysclk)
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &MemoryTraffic) -> MemoryTraffic {
        MemoryTraffic {
            cache_hits: self.cache_hits + other.cache_hits,
            sram_line_fills: self.sram_line_fills + other.sram_line_fills,
            flash_line_fills: self.flash_line_fills + other.flash_line_fills,
            sram_uncached: self.sram_uncached + other.sram_uncached,
        }
    }

    /// Total number of priced accesses.
    pub fn accesses(&self) -> u64 {
        self.cache_hits + self.sram_line_fills + self.flash_line_fills + self.sram_uncached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_time_nearly_frequency_independent() {
        let t = MemoryTiming::stm32f767();
        let slow = t.flash_fill_time(Hertz::mhz(50));
        let fast = t.flash_fill_time(Hertz::mhz(216));
        // 2*(1+1)/50MHz = 80ns vs 2*(1+7)/216MHz ≈ 74ns.
        assert!(
            (slow / fast) < 1.2,
            "flash should barely speed up: {slow} vs {fast}"
        );
    }

    #[test]
    fn hit_time_scales_linearly() {
        let t = MemoryTiming::stm32f767();
        let slow = t.hit_time(Hertz::mhz(50));
        let fast = t.hit_time(Hertz::mhz(200));
        assert!((slow / fast - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sram_fill_scales_weakly() {
        let t = MemoryTiming::stm32f767();
        let slow = t.sram_fill_time(Hertz::mhz(50));
        let fast = t.sram_fill_time(Hertz::mhz(216));
        let ratio = slow / fast;
        // 4.32x frequency gap but < 2x time gap: latency-dominated.
        assert!(ratio > 1.0 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn traffic_time_additive() {
        let t = MemoryTiming::stm32f767();
        let f = Hertz::mhz(100);
        let a = MemoryTraffic {
            cache_hits: 100,
            sram_line_fills: 10,
            ..MemoryTraffic::ZERO
        };
        let b = MemoryTraffic {
            flash_line_fills: 5,
            sram_uncached: 7,
            ..MemoryTraffic::ZERO
        };
        let sum = a.merged(&b);
        assert!((sum.time(&t, f) - (a.time(&t, f) + b.time(&t, f))).abs() < 1e-15);
        assert_eq!(sum.accesses(), a.accesses() + b.accesses());
    }

    #[test]
    fn zero_traffic_zero_time() {
        let t = MemoryTiming::stm32f767();
        assert_eq!(MemoryTraffic::ZERO.time(&t, Hertz::mhz(216)), 0.0);
    }

    #[test]
    fn custom_flash_ladder_changes_fill_time() {
        // A slower flash (narrower bands, higher cap) pays more wait
        // states at the same SYSCLK.
        let f767 = MemoryTiming::stm32f767();
        let slow =
            MemoryTiming::stm32f767().with_flash_ladder(WaitStateLadder::new(Hertz::mhz(20), 15));
        let f = Hertz::mhz(216);
        assert!(slow.flash_fill_time(f) > f767.flash_fill_time(f));
        // The default ladder is exactly the F767 one.
        assert_eq!(f767.flash_ladder, WaitStateLadder::stm32f767());
    }

    #[test]
    fn memory_bound_segment_favors_low_frequency() {
        // The paper's core claim at the timing level: a fill-dominated
        // segment loses little time at LFO.
        let t = MemoryTiming::stm32f767();
        let seg = MemoryTraffic {
            sram_line_fills: 800,
            flash_line_fills: 200,
            cache_hits: 100,
            sram_uncached: 0,
        };
        let slow = seg.time(&t, Hertz::mhz(50));
        let fast = seg.time(&t, Hertz::mhz(216));
        assert!(
            slow / fast < 2.0,
            "memory-bound slowdown should be far below the 4.32x clock ratio"
        );
    }
}
