//! Operation-level timing simulator of the STM32F767 (ARM Cortex-M7).
//!
//! The paper's evaluation runs on real silicon; this crate is the simulated
//! stand-in. It models exactly the effects the DAE+DVFS methodology
//! exploits:
//!
//! * compute time scales ~linearly with SYSCLK ([`cpu`]);
//! * memory time is latency-dominated and barely scales ([`memory`]),
//!   because flash wait states grow with frequency and AXI SRAM pays a
//!   fixed bus latency;
//! * the 16 KB L1 D-cache rewards bounded DAE buffers and punishes
//!   oversized ones ([`cache`]);
//! * clock switches cost 200 µs for a PLL re-lock but almost nothing for a
//!   mux toggle against a warm PLL ([`machine`]);
//! * idle strategies (busy spin / WFI / clock gating / stop) differ by
//!   orders of magnitude in power ([`machine::IdleMode`]).
//!
//! The central type is [`Machine`]: engines lower CNN layers into
//! [`Segment`]s and replay them, getting wall time and tagged energy back.
//!
//! # Examples
//!
//! ```
//! use mcu_sim::{Machine, MemoryTraffic, OpCounts, Segment};
//! use stm32_rcc::{Hertz, SysclkConfig};
//!
//! let mut machine = Machine::new(SysclkConfig::hse_direct(Hertz::mhz(50)));
//! let stage = Segment::memory(
//!     "stage-buffers",
//!     OpCounts { load: 256, ..OpCounts::ZERO },
//!     MemoryTraffic { sram_line_fills: 64, ..MemoryTraffic::ZERO },
//! );
//! machine.run_segment(&stage);
//! assert!(machine.elapsed_secs() > 0.0);
//! ```

pub mod cache;
pub mod cpu;
pub mod machine;
pub mod memory;
pub mod segment;
pub mod timer;
pub mod trace;

pub use cache::{reuse_hit_ratio, Cache, CacheConfig, CacheStats};
pub use cpu::{CpuModel, OpCounts};
pub use machine::{IdleMode, Machine};
pub use memory::{MemoryTiming, MemoryTraffic};
pub use segment::{Segment, SegmentClass};
pub use timer::HardwareTimer;
pub use trace::{Timeline, TraceEvent, TraceKind};
