//! On-board timer peripheral model (TIM2-style 32-bit free-running counter).
//!
//! The paper's "custom run-time monitoring mechanism ... relies on the
//! on-board timers of the target MCU, which are triggered in-between the
//! layers' code segments". The profiler in `tinyengine` uses this model so
//! that measured latencies carry realistic quantization (integer ticks of
//! the timer clock) and 32-bit wrap-around semantics.

use stm32_rcc::Hertz;

/// A free-running 32-bit up-counter clocked at a fixed frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareTimer {
    clock: Hertz,
}

impl HardwareTimer {
    /// Creates a timer counting at `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `clock` is zero.
    pub fn new(clock: Hertz) -> Self {
        assert!(!clock.is_zero(), "timer clock must be non-zero");
        HardwareTimer { clock }
    }

    /// The counting clock.
    pub fn clock(&self) -> Hertz {
        self.clock
    }

    /// Counter value at absolute time `t_secs` (wrapping at 2³²).
    ///
    /// ```
    /// use mcu_sim::timer::HardwareTimer;
    /// use stm32_rcc::Hertz;
    ///
    /// let tim = HardwareTimer::new(Hertz::mhz(100));
    /// assert_eq!(tim.capture(1e-6), 100);
    /// ```
    pub fn capture(&self, t_secs: f64) -> u32 {
        let ticks = (t_secs * self.clock.as_f64()).floor() as u64;
        (ticks & 0xFFFF_FFFF) as u32
    }

    /// Elapsed seconds between two captures, assuming at most one wrap.
    pub fn delta_secs(&self, start: u32, end: u32) -> f64 {
        let ticks = end.wrapping_sub(start);
        u64::from(ticks) as f64 / self.clock.as_f64()
    }

    /// The quantization step of this timer in seconds.
    pub fn resolution_secs(&self) -> f64 {
        self.clock.period_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_quantizes_down() {
        let t = HardwareTimer::new(Hertz::mhz(1));
        assert_eq!(t.capture(2.5e-6), 2);
        assert_eq!(t.capture(2.999e-6), 2);
        assert_eq!(t.capture(3.0e-6), 3);
    }

    #[test]
    fn delta_round_trip() {
        let t = HardwareTimer::new(Hertz::mhz(100));
        let a = t.capture(1.0);
        let b = t.capture(1.125);
        assert!((t.delta_secs(a, b) - 0.125).abs() < t.resolution_secs());
    }

    #[test]
    fn wrap_around_handled() {
        let t = HardwareTimer::new(Hertz::mhz(100));
        let start = u32::MAX - 10;
        let end = 20u32;
        // 31 ticks across the wrap.
        assert!((t.delta_secs(start, end) - 31e-8).abs() < 1e-12);
    }

    #[test]
    fn resolution() {
        let t = HardwareTimer::new(Hertz::mhz(216));
        assert!((t.resolution_secs() - 1.0 / 216e6).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_clock_rejected() {
        let _ = HardwareTimer::new(Hertz::new(0));
    }
}
