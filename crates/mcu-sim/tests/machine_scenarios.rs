//! Scenario tests for the Machine: DVFS schedules, conservation laws,
//! tracing.

use mcu_sim::{IdleMode, Machine, MemoryTraffic, OpCounts, Segment, TraceKind};
use stm32_rcc::{ClockSource, Hertz, PllConfig, SysclkConfig};

fn hfo(n: u32) -> SysclkConfig {
    SysclkConfig::Pll(PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, n, 2).expect("valid"))
}

fn lfo() -> SysclkConfig {
    SysclkConfig::hse_direct(Hertz::mhz(50))
}

fn work(macs: u64, fills: u64) -> Segment {
    Segment::compute(
        "work",
        OpCounts {
            mac: macs,
            ..OpCounts::ZERO
        },
        MemoryTraffic {
            sram_line_fills: fills,
            ..MemoryTraffic::ZERO
        },
    )
}

#[test]
fn splitting_a_segment_conserves_time_and_energy() {
    // Running 10x smaller segments equals one big segment at a fixed clock
    // (no switches in between).
    let mut whole = Machine::new(hfo(216));
    whole.run_segment(&work(1_000_000, 1000));

    let mut split = Machine::new(hfo(216));
    for _ in 0..10 {
        split.run_segment(&work(100_000, 100));
    }
    assert!((whole.elapsed_secs() - split.elapsed_secs()).abs() < 1e-12);
    assert!((whole.energy().as_f64() - split.energy().as_f64()).abs() < 1e-15);
}

#[test]
fn dae_style_alternation_tracks_every_phase() {
    let mut m = Machine::new(hfo(216)).with_tracing();
    for _ in 0..4 {
        m.switch_clock(lfo());
        m.run_segment(&Segment::memory(
            "stage",
            OpCounts::ZERO,
            MemoryTraffic {
                sram_line_fills: 256,
                ..MemoryTraffic::ZERO
            },
        ));
        m.switch_clock(hfo(216));
        m.run_segment(&work(50_000, 0));
    }
    assert_eq!(m.switch_count(), 8);
    assert_eq!(m.relock_count(), 0, "warm PLL: no re-locks in steady state");
    let tl = m.timeline().expect("tracing on");
    assert_eq!(tl.len(), 16); // 8 switches + 8 segments
    let lfo_time = tl.time_at_mhz(50.0);
    let hfo_time = tl.time_at_mhz(216.0);
    assert!(lfo_time > 0.0 && hfo_time > 0.0);
    assert!(
        (lfo_time + hfo_time - m.elapsed_secs()).abs() < 1e-12,
        "timeline must cover all machine time"
    );
}

#[test]
fn background_relock_saves_exactly_the_overlap() {
    // Cold switch: full 200 µs stall.
    let mut cold = Machine::new(hfo(216));
    let cold_stall = cold.switch_clock(hfo(150));

    // Prepared during 120 µs of LFO work: only the residue stalls.
    let mut warm = Machine::new(hfo(216));
    warm.switch_clock(lfo());
    warm.prepare_pll(PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 150, 2).unwrap());
    warm.idle(120e-6, IdleMode::BusyRun, "staging");
    let warm_stall = warm.switch_clock(hfo(150));

    assert!((cold_stall - 200e-6).abs() < 1e-12);
    // 200 - 120 = 80 µs residue + 1 µs mux.
    assert!((warm_stall - 81e-6).abs() < 1e-9, "got {warm_stall}");
}

#[test]
fn fully_matured_background_relock_costs_only_the_mux() {
    let mut m = Machine::new(hfo(216));
    m.switch_clock(lfo());
    m.prepare_pll(PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 100, 2).unwrap());
    m.idle(300e-6, IdleMode::BusyRun, "staging");
    let stall = m.switch_clock(hfo(100));
    assert!((stall - 1e-6).abs() < 1e-12, "got {stall}");
}

#[test]
fn prepare_pll_rejected_while_running_from_pll() {
    let mut m = Machine::new(hfo(216));
    let accepted =
        m.prepare_pll(PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 100, 2).unwrap());
    assert!(!accepted, "cannot re-program the PLL driving SYSCLK");
}

#[test]
fn energy_breakdown_tags_segments_and_switches() {
    let mut m = Machine::new(hfo(216));
    m.run_segment(&work(100_000, 0));
    m.switch_clock(lfo());
    m.idle(1e-3, IdleMode::ClockGated, "deadline-wait");
    let b = m.meter().breakdown();
    assert!(b.energy("work").as_f64() > 0.0);
    assert!(b.energy("clock-switch").as_f64() > 0.0);
    assert!(b.energy("deadline-wait").as_f64() > 0.0);
    let sum: f64 = b.iter().map(|(_, e)| e.as_f64()).sum();
    assert!((sum - m.energy().as_f64()).abs() < 1e-15);
}

#[test]
fn trace_kinds_partition_machine_time() {
    let mut m = Machine::new(hfo(216)).with_tracing();
    m.run_segment(&work(10_000, 50));
    m.switch_clock(hfo(100)); // relock
    m.idle(2e-3, IdleMode::Wfi, "nap");
    let tl = m.timeline().expect("tracing on");
    let total = tl.time_in(TraceKind::Segment)
        + tl.time_in(TraceKind::ClockSwitch)
        + tl.time_in(TraceKind::Idle);
    assert!((total - m.elapsed_secs()).abs() < 1e-12);
    assert!((tl.time_in(TraceKind::ClockSwitch) - 200e-6).abs() < 1e-12);
}
