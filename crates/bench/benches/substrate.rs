//! Substrate benches: cache model, machine stepping, int8 kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use mcu_sim::cache::{Cache, CacheConfig};
use mcu_sim::{Machine, MemoryTraffic, OpCounts, Segment};
use std::hint::black_box;
use std::sync::Arc;
use stm32_power::PowerModel;
use stm32_rcc::{ClockSource, Hertz, PllConfig, SysclkConfig};
use tinynn::models::vww_sized;
use tinynn::Tensor;

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");

    group.bench_function("cache_streaming_64kb", |b| {
        let mut cache = Cache::new(CacheConfig::stm32f767());
        b.iter(|| black_box(cache.access_byte_range(0, 64 * 1024)))
    });

    group.bench_function("machine_segment_step", |b| {
        let clock = SysclkConfig::Pll(
            PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 216, 2).expect("valid"),
        );
        let mut machine = Machine::new(clock);
        let seg = Segment::compute(
            "kernel",
            OpCounts {
                mac: 100_000,
                load: 50_000,
                ..OpCounts::ZERO
            },
            MemoryTraffic {
                sram_line_fills: 500,
                ..MemoryTraffic::ZERO
            },
        );
        b.iter(|| black_box(machine.run_segment(&seg)))
    });

    // Per-DSE-point setup cost: one machine construction per evaluated
    // point. The power model rides in a shared Arc, so this is a refcount
    // bump instead of a model clone.
    group.bench_function("machine_setup_shared_power", |b| {
        let clock = SysclkConfig::Pll(
            PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 216, 2).expect("valid"),
        );
        let power = Arc::new(PowerModel::nucleo_f767zi());
        b.iter(|| {
            black_box(
                Machine::new(clock)
                    .with_power(Arc::clone(&power))
                    .run_power(),
            )
        })
    });

    group.bench_function("machine_setup_cloned_power", |b| {
        let clock = SysclkConfig::Pll(
            PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 216, 2).expect("valid"),
        );
        let power = PowerModel::nucleo_f767zi();
        b.iter(|| black_box(Machine::new(clock).with_power(power.clone()).run_power()))
    });

    group.bench_function("int8_inference_vww32", |b| {
        let model = vww_sized(32);
        let input = Tensor::zeros(model.input_shape);
        b.iter(|| black_box(model.infer(&input).expect("infers")))
    });

    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
