//! FIG5 bench: the end-to-end pipeline and both baselines on VWW.

use criterion::{criterion_group, criterion_main, Criterion};
use dae_dvfs::{deploy, optimize, DseConfig};
use std::hint::black_box;
use tinyengine::{qos_window, run_iso_latency, IdlePolicy, TinyEngine};
use tinynn::models::vww;

fn bench_fig5(c: &mut Criterion) {
    let model = vww();
    let engine = TinyEngine::new();
    let baseline = engine.run(&model).expect("baseline").total_time_secs;
    let qos = qos_window(baseline, 0.30);
    let cfg = DseConfig::paper();

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);

    group.bench_function("tinyengine_inference", |b| {
        b.iter(|| black_box(engine.run(&model).expect("runs").total_energy))
    });

    group.bench_function("tinyengine_iso_latency_gated", |b| {
        b.iter(|| {
            black_box(
                run_iso_latency(&engine, &model, qos, IdlePolicy::ClockGated)
                    .expect("runs")
                    .total_energy,
            )
        })
    });

    group.bench_function("optimize_vww_30pct", |b| {
        b.iter(|| black_box(optimize(&model, qos, &cfg).expect("optimizes").decisions.len()))
    });

    let plan = optimize(&model, qos, &cfg).expect("optimizes");
    group.bench_function("deploy_vww_30pct", |b| {
        b.iter(|| black_box(deploy(&model, &plan, &cfg).expect("deploys").total_energy))
    });

    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
