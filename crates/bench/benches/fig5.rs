//! FIG5 bench: the end-to-end pipeline and both baselines on VWW.
//!
//! The `planner_*` functions separate the one-time construction cost (DSE
//! sweep) from the per-QoS-point marginal cost — the ratio
//! `optimize_vww_30pct_percall / planner_optimize_cached` is the
//! amortization the `Planner` buys.

use criterion::{criterion_group, criterion_main, Criterion};
use dae_dvfs::{deploy, optimize, DseConfig, Planner};
use std::hint::black_box;
use tinyengine::{qos_window, IdlePolicy, TinyEngine};
use tinynn::models::vww;

fn bench_fig5(c: &mut Criterion) {
    let model = vww();
    let engine = TinyEngine::new();
    let lowered = engine.compile(&model).expect("baseline compiles");
    let baseline = lowered.run().total_time_secs;
    let qos = qos_window(baseline, 0.30);
    let cfg = DseConfig::paper();

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);

    group.bench_function("tinyengine_inference", |b| {
        b.iter(|| black_box(engine.run(&model).expect("runs").total_energy))
    });

    group.bench_function("tinyengine_inference_compiled", |b| {
        b.iter(|| black_box(lowered.run().total_energy))
    });

    group.bench_function("tinyengine_iso_latency_gated", |b| {
        b.iter(|| {
            black_box(
                lowered
                    .run_iso_latency(qos, IdlePolicy::ClockGated)
                    .total_energy,
            )
        })
    });

    group.bench_function("optimize_vww_30pct_percall", |b| {
        b.iter(|| {
            black_box(
                optimize(&model, qos, &cfg)
                    .expect("optimizes")
                    .decisions
                    .len(),
            )
        })
    });

    group.bench_function("planner_construction", |b| {
        b.iter(|| {
            black_box(
                Planner::for_target(repro_bench::target(), &model)
                    .expect("builds")
                    .fronts()
                    .len(),
            )
        })
    });

    let planner = Planner::for_target(repro_bench::target(), &model).expect("builds");
    group.bench_function("planner_optimize_cached", |b| {
        b.iter(|| black_box(planner.optimize(qos).expect("optimizes").decisions.len()))
    });

    let windows: Vec<f64> = (0..10)
        .map(|i| qos_window(baseline, 0.05 + 0.10 * i as f64))
        .collect();
    group.bench_function("planner_sweep10_cached", |b| {
        b.iter(|| {
            black_box(
                planner
                    .sweep(windows.iter().copied())
                    .expect("sweeps")
                    .len(),
            )
        })
    });

    let plan = planner.optimize(qos).expect("optimizes");
    group.bench_function("deploy_vww_30pct", |b| {
        b.iter(|| black_box(deploy(&model, &plan, &cfg).expect("deploys").total_energy))
    });

    group.bench_function("planner_deploy_cached", |b| {
        b.iter(|| black_box(planner.deploy(&plan).expect("deploys").total_energy))
    });

    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
