//! Plan-service benches: cold per-request solves vs cached hits vs
//! coalesced batch solves through the `PlanService` front end.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dae_dvfs::{CoalesceMode, PlanRequest, PlanService, Planner, ServiceConfig};
use std::hint::black_box;
use tinyengine::qos_window;

fn planner() -> Arc<Planner> {
    Arc::new(
        Planner::for_target(repro_bench::target(), &tinynn::models::vww_sized(32))
            .expect("planner builds"),
    )
}

/// Eight distinct windows spanning tight to relaxed QoS.
fn windows(planner: &Planner) -> Vec<f64> {
    let baseline = planner.baseline_latency().expect("baseline runs");
    (0..8)
        .map(|i| qos_window(baseline, 0.08 + 0.11 * i as f64))
        .collect()
}

fn bench_plan_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_service");
    let planner = planner();
    let windows = windows(&planner);

    // Cold baseline: N independent per-request solves on the bare
    // planner — what every request pays without the service.
    group.bench_function("cold_plan_loop8", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &w in &windows {
                acc += planner
                    .plan(&PlanRequest::qos(w))
                    .expect("solves")
                    .predicted_energy
                    .as_f64();
            }
            black_box(acc)
        })
    });

    // Cached hit: the same request answered from the warm plan cache.
    group.bench_function("cache_hit", |b| {
        let mut service =
            PlanService::new(ServiceConfig::default().with_workers(2)).expect("config validates");
        let key = service.register(planner.clone());
        let hot = PlanRequest::qos(windows[0]);
        service.run(|svc| {
            svc.plan(key, &hot).expect("warm solve");
            b.iter(|| black_box(svc.plan(key, &hot).expect("hit")));
        });
    });

    // Coalesced batch: 8 distinct windows submitted at once, answered by
    // shared-grid batch solves. Windows are jittered per iteration so
    // every iteration re-solves instead of hitting the cache.
    group.bench_function("coalesced_batch8", |b| {
        let mut service = PlanService::new(
            ServiceConfig::default()
                .with_workers(2)
                .with_mode(CoalesceMode::Swept)
                .with_batch_linger(Duration::from_micros(500))
                .with_cache_capacity(8)
                .with_cache_shards(1),
        )
        .expect("config validates");
        let key = service.register(planner.clone());
        service.run(|svc| {
            let mut iteration = 0u64;
            b.iter(|| {
                iteration += 1;
                let jitter = iteration as f64 * 1e-9;
                let tickets: Vec<_> = windows
                    .iter()
                    .map(|&w| {
                        svc.submit(key, &PlanRequest::qos(w + jitter))
                            .expect("admitted")
                    })
                    .collect();
                let mut acc = 0.0;
                for ticket in tickets {
                    acc += ticket.wait().expect("solves").predicted_energy.as_f64();
                }
                black_box(acc)
            });
        });
    });

    group.finish();
}

criterion_group!(benches, bench_plan_service);
criterion_main!(benches);
