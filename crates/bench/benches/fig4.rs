//! FIG4 bench: per-layer DSE sweep cost (the paper's step 2).

use criterion::{criterion_group, criterion_main, Criterion};
use dae_dvfs::{dae_segments, evaluate_point, explore_layer, DseConfig, Granularity};
use std::hint::black_box;
use stm32_rcc::Hertz;
use tinynn::models::vww;
use tinynn::Layer;

fn bench_fig4(c: &mut Criterion) {
    let model = vww();
    let plan = model.plan().expect("plan resolves");
    let profiles: Vec<_> = model
        .layers()
        .zip(plan.iter())
        .map(|(nl, info)| tinyengine::layer_profile(&nl.layer, info))
        .collect();
    let dw_idx = model
        .layers()
        .position(|nl| matches!(nl.layer, Layer::Depthwise(_)))
        .expect("dw layer exists");
    let cfg = DseConfig::paper();
    let f216 = cfg
        .modes
        .hfo_at(Hertz::mhz(216))
        .copied()
        .expect("216 MHz candidate");

    let mut group = c.benchmark_group("fig4");

    group.bench_function("dae_lowering_g8", |b| {
        b.iter(|| black_box(dae_segments(&profiles[dw_idx], Granularity(8), &cfg.cache)).len())
    });

    group.bench_function("evaluate_one_point", |b| {
        b.iter(|| {
            black_box(evaluate_point(
                &profiles[dw_idx],
                Granularity(8),
                &f216,
                &cfg,
            ))
        })
    });

    group.bench_function("explore_one_layer_full_grid", |b| {
        b.iter(|| black_box(explore_layer(&profiles[dw_idx], &cfg)).len())
    });

    group.bench_function("explore_whole_model", |b| {
        b.iter(|| {
            profiles
                .iter()
                .map(|p| explore_layer(p, &cfg).len())
                .sum::<usize>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
