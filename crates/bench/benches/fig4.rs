//! FIG4 bench: per-layer DSE sweep cost (the paper's step 2).

use criterion::{criterion_group, criterion_main, Criterion};
use dae_dvfs::{
    dae_segments, evaluate_point, evaluate_schedule, explore_layer, explore_model, CompiledLayer,
    DseConfig, Granularity,
};
use std::hint::black_box;
use std::sync::Arc;
use stm32_rcc::Hertz;
use tinynn::models::vww;
use tinynn::Layer;

fn bench_fig4(c: &mut Criterion) {
    let model = vww();
    let plan = model.plan().expect("plan resolves");
    let profiles: Vec<_> = model
        .layers()
        .zip(plan.iter())
        .map(|(nl, info)| tinyengine::layer_profile(&nl.layer, info))
        .collect();
    let dw_idx = model
        .layers()
        .position(|nl| matches!(nl.layer, Layer::Depthwise(_)))
        .expect("dw layer exists");
    let cfg = DseConfig::paper();
    let f216 = cfg
        .modes
        .hfo_at(Hertz::mhz(216))
        .copied()
        .expect("216 MHz candidate");

    let mut group = c.benchmark_group("fig4");

    group.bench_function("dae_lowering_g8", |b| {
        b.iter(|| black_box(dae_segments(&profiles[dw_idx], Granularity(8), &cfg.cache)).len())
    });

    group.bench_function("evaluate_one_point", |b| {
        b.iter(|| {
            black_box(evaluate_point(
                &profiles[dw_idx],
                Granularity(8),
                &f216,
                &cfg,
            ))
        })
    });

    let power = Arc::new(cfg.power.clone());
    let compiled = CompiledLayer::compile(profiles[dw_idx].clone(), &cfg);
    let schedule = compiled
        .schedule(Granularity(8))
        .expect("g=8 is in the paper set")
        .clone();
    group.bench_function("evaluate_one_point_compiled", |b| {
        b.iter(|| {
            black_box(evaluate_schedule(
                &schedule,
                Granularity(8),
                &f216,
                &cfg,
                &power,
            ))
        })
    });

    group.bench_function("explore_one_layer_full_grid", |b| {
        b.iter(|| black_box(explore_layer(&profiles[dw_idx], &cfg)).len())
    });

    group.bench_function("explore_whole_model", |b| {
        b.iter(|| {
            profiles
                .iter()
                .map(|p| explore_layer(p, &cfg).len())
                .sum::<usize>()
        })
    });

    let layers: Vec<CompiledLayer> = profiles
        .iter()
        .map(|p| CompiledLayer::compile(p.clone(), &cfg))
        .collect();
    group.bench_function("explore_whole_model_compiled", |b| {
        b.iter(|| black_box(explore_model(&layers, &cfg, &power)).len())
    });

    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
