//! Solver benches: MCKP dynamic program vs greedy at realistic sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dae_dvfs::{solve_dp, solve_greedy, DseConfig, MckpItem};
use std::hint::black_box;

/// Deterministic synthetic MCKP instance shaped like a per-layer Pareto
/// front: `layers` classes of `points` items each, times descending with
/// energy ascending.
fn instance(layers: usize, points: usize) -> Vec<Vec<MckpItem>> {
    (0..layers)
        .map(|k| {
            (1..=points)
                .map(|i| MckpItem {
                    time_secs: 1e-3 * (points + 1 - i) as f64 * (1.0 + k as f64 * 0.07),
                    energy: 1e-4 * i as f64 * (1.0 + k as f64 * 0.05),
                })
                .collect()
        })
        .collect()
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mckp");

    for &layers in &[20usize, 40, 80] {
        let classes = instance(layers, 10);
        let min_time: f64 = classes
            .iter()
            .map(|c| c.iter().map(|i| i.time_secs).fold(f64::INFINITY, f64::min))
            .sum();
        let budget = min_time * 1.5;

        let resolution = DseConfig::DEFAULT_DP_RESOLUTION;
        group.bench_with_input(BenchmarkId::new("dp_2000", layers), &classes, |b, cl| {
            b.iter(|| {
                black_box(
                    solve_dp(cl, budget, resolution)
                        .expect("solves")
                        .total_energy,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("greedy", layers), &classes, |b, cl| {
            b.iter(|| black_box(solve_greedy(cl, budget).expect("solves").total_energy))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
