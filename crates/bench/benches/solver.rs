//! Solver-core benches: per-call MCKP DP per budget vs one shared-grid
//! sweep pass answering the whole budget batch, plus the quantized
//! kernel split out into fill / extract / incremental re-solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dae_dvfs::{
    mckp_resweep, mckp_sweep, solve_dp, solve_dp_sweep, DseConfig, MckpItem, SolverWorkspace,
};
use std::hint::black_box;

/// Deterministic synthetic MCKP instance shaped like a per-layer Pareto
/// front: `layers` classes of `points` items each, times descending with
/// energy ascending.
fn instance(layers: usize, points: usize) -> Vec<Vec<MckpItem>> {
    (0..layers)
        .map(|k| {
            (1..=points)
                .map(|i| MckpItem {
                    time_secs: 1e-3 * (points + 1 - i) as f64 * (1.0 + k as f64 * 0.07),
                    energy: 1e-4 * i as f64 * (1.0 + k as f64 * 0.05),
                })
                .collect()
        })
        .collect()
}

/// A 10-point budget batch spanning tight to relaxed QoS, like the
/// planner's sweep.
fn budgets(classes: &[Vec<MckpItem>]) -> Vec<f64> {
    let min_time: f64 = classes
        .iter()
        .map(|c| c.iter().map(|i| i.time_secs).fold(f64::INFINITY, f64::min))
        .sum();
    (0..10)
        .map(|i| min_time * (1.05 + 0.10 * i as f64))
        .collect()
}

fn bench_solver_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_sweep10");
    let resolution = DseConfig::DEFAULT_DP_RESOLUTION;

    // Small / medium / large fronts: roughly VWW-, MobileNet-V2- and
    // beyond-paper-sized instances.
    for &(layers, points) in &[(10usize, 6usize), (20, 10), (40, 12)] {
        let classes = instance(layers, points);
        let batch = budgets(&classes);

        group.bench_with_input(BenchmarkId::new("percall", layers), &classes, |b, cl| {
            b.iter(|| {
                let mut acc = 0.0;
                for &budget in &batch {
                    acc += solve_dp(cl, budget, resolution)
                        .expect("solves")
                        .total_energy;
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("sweep", layers), &classes, |b, cl| {
            b.iter(|| {
                let out = solve_dp_sweep(cl, &batch, resolution).expect("sweep solves");
                let acc: f64 = out
                    .into_iter()
                    .map(|s| s.expect("feasible").total_energy)
                    .sum();
                black_box(acc)
            })
        });

        // The kernel split out: table fill alone, the 10 extractions
        // alone, and an incremental re-solve after a single-class drift
        // (the middle class's first item flips its energy each iteration,
        // so every resweep sees exactly one changed class).
        group.bench_with_input(BenchmarkId::new("fill", layers), &classes, |b, cl| {
            let mut ws = SolverWorkspace::new();
            b.iter(|| {
                let table = mckp_sweep(cl, &batch, resolution, &mut ws).map(|t| t.buckets());
                black_box(table).expect("fill solves");
            })
        });
        group.bench_with_input(BenchmarkId::new("extract", layers), &classes, |b, cl| {
            let mut ws = SolverWorkspace::new();
            let table = mckp_sweep(cl, &batch, resolution, &mut ws).expect("fill solves");
            b.iter(|| {
                let mut acc = 0.0;
                for &budget in &batch {
                    acc += table.best_for(budget).expect("feasible").total_energy;
                }
                black_box(acc)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("incremental", layers),
            &classes,
            |b, cl| {
                let mut drifted = cl.clone();
                let mid = drifted.len() / 2;
                let mut ws = SolverWorkspace::new();
                mckp_resweep(&drifted, &batch, resolution, &mut ws).expect("prime solves");
                let mut sign = 1.0;
                b.iter(|| {
                    drifted[mid][0].energy += sign * 0.37e-6;
                    sign = -sign;
                    let table = mckp_resweep(&drifted, &batch, resolution, &mut ws)
                        .expect("resweep solves");
                    black_box(table.refilled_classes())
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_solver_sweep);
criterion_main!(benches);
