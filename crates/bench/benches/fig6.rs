//! FIG6 bench: frequency-map construction and statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use dae_dvfs::{optimize, DseConfig, FrequencyMap};
use repro_bench::fig6_stats;
use std::hint::black_box;
use tinyengine::{qos_window, TinyEngine};
use tinynn::models::vww;

fn bench_fig6(c: &mut Criterion) {
    let model = vww();
    let baseline = TinyEngine::new()
        .run(&model)
        .expect("baseline")
        .total_time_secs;
    let cfg = DseConfig::paper();
    let plan = optimize(&model, qos_window(baseline, 0.30), &cfg).expect("optimizes");

    let mut group = c.benchmark_group("fig6");

    group.bench_function("frequency_map_from_plan", |b| {
        b.iter(|| black_box(FrequencyMap::from_plan(&plan, 0.30)).rows.len())
    });

    let map = FrequencyMap::from_plan(&plan, 0.30);
    group.bench_function("fig6_statistics", |b| {
        b.iter(|| black_box(fig6_stats(&map)))
    });

    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
