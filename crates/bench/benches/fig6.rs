//! FIG6 bench: frequency-map construction and statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use dae_dvfs::{FrequencyMap, Planner};
use repro_bench::fig6_stats;
use std::hint::black_box;
use tinyengine::qos_window;
use tinynn::models::vww;

fn bench_fig6(c: &mut Criterion) {
    let model = vww();
    let planner = Planner::for_target(repro_bench::target(), &model).expect("planner builds");
    let baseline = planner.baseline_latency().expect("baseline");
    let plan = planner
        .optimize(qos_window(baseline, 0.30))
        .expect("optimizes");

    let mut group = c.benchmark_group("fig6");

    group.bench_function("frequency_map_from_plan", |b| {
        b.iter(|| black_box(FrequencyMap::from_plan(&plan, 0.30)).rows.len())
    });

    let map = FrequencyMap::from_plan(&plan, 0.30);
    group.bench_function("fig6_statistics", |b| {
        b.iter(|| black_box(fig6_stats(&map)))
    });

    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
