//! FIG2 bench: clock-tree enumeration and iso-frequency grouping.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stm32_power::PowerModel;
use stm32_rcc::{ConfigSpace, SysclkConfig};

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");

    group.bench_function("enumerate_wide_space", |b| {
        b.iter(|| black_box(ConfigSpace::wide().enumerate_pll()).len())
    });

    group.bench_function("iso_frequency_grouping", |b| {
        b.iter(|| black_box(ConfigSpace::wide().iso_frequency_groups()).len())
    });

    group.bench_function("power_per_configuration", |b| {
        let model = PowerModel::nucleo_f767zi();
        let configs = ConfigSpace::wide().enumerate_pll();
        b.iter(|| {
            configs
                .iter()
                .map(|cfg| model.run_power(&SysclkConfig::Pll(*cfg)).as_f64())
                .sum::<f64>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
