//! A tiny JSON string builder for the machine-readable outputs.
//!
//! The workspace is offline (no serde), so the benchmark and example
//! binaries hand-roll their JSON. This module centralizes the
//! string-building that used to live inline in `bench_summary.rs` —
//! escaping, field assembly, array joining — so every emitter (the bench
//! summary, the cross-target example's plan index, future reports)
//! produces consistent, parseable output.

use std::fmt::Write as _;

/// Schema version of the `BENCH_SUMMARY.json` document. This constant is
/// the single source of truth: `repro-lint`'s consistency rule checks
/// that the committed `BENCH_SUMMARY.json` and every `schema v<N>`
/// mention in `DESIGN.md` agree with it.
pub const BENCH_SUMMARY_SCHEMA_VERSION: u64 = 8;

/// Escapes and quotes a string for JSON.
///
/// Delegates to the single escaper the plan-artifact writer uses
/// ([`dae_dvfs::artifact::json_quote`]) so escaping rules cannot diverge
/// between emitters.
pub fn quote(s: &str) -> String {
    dae_dvfs::artifact::json_quote(s)
}

/// An ordered JSON object under construction. Values are raw JSON
/// fragments; use the typed `*_field` methods for scalars.
#[derive(Debug, Clone, Default)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Appends a raw JSON fragment (an already-rendered object, array or
    /// scalar).
    pub fn raw_field(mut self, key: &str, raw: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), raw.into()));
        self
    }

    /// Appends a string field (escaped and quoted).
    pub fn str_field(self, key: &str, value: &str) -> Self {
        let quoted = quote(value);
        self.raw_field(key, quoted)
    }

    /// Appends an integer field.
    pub fn u64_field(self, key: &str, value: u64) -> Self {
        self.raw_field(key, value.to_string())
    }

    /// Appends a floating-point field with `decimals` fractional digits.
    pub fn f64_field(self, key: &str, value: f64, decimals: usize) -> Self {
        self.raw_field(key, format!("{value:.decimals$}"))
    }

    /// Appends an array field from already-rendered element fragments.
    pub fn array_field(self, key: &str, elements: &[String]) -> Self {
        let rendered = render_array(elements);
        self.raw_field(key, rendered)
    }

    /// Renders the object compactly (single line).
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {v}", quote(k));
        }
        out.push('}');
        out
    }

    /// Renders the object with each top-level field on its own line —
    /// the diff-friendly layout the committed `BENCH_SUMMARY.json` uses.
    /// Array fields additionally get one line per element.
    pub fn render_pretty(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let _ = write!(out, "  {}: ", quote(k));
            if v == "[]" {
                out.push_str("[]");
            } else if v.starts_with('[') && v.ends_with(']') {
                // Re-indent array elements (top-level commas only).
                let inner = &v[1..v.len() - 1];
                out.push_str("[\n");
                for element in split_top_level(inner) {
                    let _ = write!(out, "    {element}");
                    out.push_str(",\n");
                }
                // Drop the trailing comma of the last element.
                out.truncate(out.len() - 2);
                out.push('\n');
                out.push_str("  ]");
            } else {
                out.push_str(v);
            }
            out.push_str(if i + 1 < self.fields.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push('}');
        out
    }
}

/// Validates a rendered `BENCH_SUMMARY.json` document: it must parse
/// under the workspace's own JSON parser (the one plan artifacts use, so
/// emitter and reader cannot diverge), carry the expected
/// `schema_version`, and list at least one model row with the per-model
/// timing fields. Schema v4 additionally requires the `service` section
/// (plan-service cache-hit speedup, coalescing speedup, hit rate and
/// throughput). Schema v5 additionally requires the quantized-kernel
/// fields on every model row: `kernel_fill_secs`, `kernel_extract_secs`
/// and `incremental_speedup` (full refill over incremental re-solve
/// after a single-class drift). Schema v6 additionally requires the
/// `server` section — the HTTP serving measurement over real loopback
/// sockets: request count and latency percentiles (`http_requests`,
/// `http_p50_ms`, `http_p99_ms`) plus the warm-vs-cold split proving the
/// registry tier answered the restarted pass without a solve
/// (`cold_solves`, `warm_solves`, `warm_registry_hits`). Schema v7
/// additionally requires the serving hot-path fields: `warm_p50_ms`,
/// `warm_p99_ms` and `inline_hit_rate` on the `server` section (the hot
/// replay's latency over keep-alive connections and its inline-hit
/// share) and `allocs_per_hit` on the `service` section (heap
/// allocations per in-memory cache hit, measured by a counting
/// allocator). Schema v8 additionally requires the observability fields
/// on the `server` section: `warm_noreceipt_p50_ms` (the hot replay's
/// median with receipts disabled — the before number),
/// `receipt_overhead_frac` (the fractional p50 cost of stamping a
/// receipt on every response), and a non-empty `path_histograms` array
/// with one row per populated serving path carrying `path`, `count`,
/// `p50_us` and `p99_us` from the service's fixed-bucket latency
/// histograms.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_summary(document: &str, expected_schema: u64) -> Result<(), String> {
    let value = dae_dvfs::artifact::json::parse(document)
        .map_err(|e| format!("summary does not parse: {e}"))?;
    let object = value
        .as_object("bench summary")
        .map_err(|e| e.to_string())?;
    let schema = object
        .get_u64("schema_version")
        .map_err(|e| e.to_string())?;
    if schema != expected_schema {
        return Err(format!(
            "schema_version {schema} != expected {expected_schema}"
        ));
    }
    let models = object
        .get("models")
        .and_then(|m| m.as_array("models"))
        .map_err(|e| e.to_string())?;
    if models.is_empty() {
        return Err("models array is empty".into());
    }
    for row in models {
        let row = row.as_object("model row").map_err(|e| e.to_string())?;
        for field in [
            "planner_construction_secs",
            "planner_sweep_secs",
            "percall_loop_secs",
            "sweep_speedup",
        ] {
            row.get_f64(field).map_err(|e| e.to_string())?;
        }
        if expected_schema >= 5 {
            for field in [
                "kernel_fill_secs",
                "kernel_extract_secs",
                "incremental_speedup",
            ] {
                row.get_f64(field).map_err(|e| e.to_string())?;
            }
        }
    }
    if expected_schema >= 4 {
        let service = object
            .get("service")
            .and_then(|s| s.as_object("service section"))
            .map_err(|e| e.to_string())?;
        for field in [
            "cache_hit_speedup",
            "coalescing_speedup",
            "hit_rate",
            "throughput_rps",
        ] {
            service.get_f64(field).map_err(|e| e.to_string())?;
        }
        if expected_schema >= 7 {
            service
                .get_f64("allocs_per_hit")
                .map_err(|e| e.to_string())?;
        }
    }
    if expected_schema >= 6 {
        let server = object
            .get("server")
            .and_then(|s| s.as_object("server section"))
            .map_err(|e| e.to_string())?;
        for field in [
            "http_requests",
            "cold_solves",
            "warm_solves",
            "warm_registry_hits",
        ] {
            server.get_u64(field).map_err(|e| e.to_string())?;
        }
        for field in ["http_p50_ms", "http_p99_ms"] {
            server.get_f64(field).map_err(|e| e.to_string())?;
        }
        if expected_schema >= 7 {
            for field in ["warm_p50_ms", "warm_p99_ms", "inline_hit_rate"] {
                server.get_f64(field).map_err(|e| e.to_string())?;
            }
        }
        if expected_schema >= 8 {
            for field in ["warm_noreceipt_p50_ms", "receipt_overhead_frac"] {
                server.get_f64(field).map_err(|e| e.to_string())?;
            }
            let histograms = server
                .get("path_histograms")
                .and_then(|h| h.as_array("path_histograms"))
                .map_err(|e| e.to_string())?;
            if histograms.is_empty() {
                return Err("path_histograms array is empty".into());
            }
            for row in histograms {
                let row = row
                    .as_object("path histogram row")
                    .map_err(|e| e.to_string())?;
                row.get_str("path").map_err(|e| e.to_string())?;
                row.get_u64("count").map_err(|e| e.to_string())?;
                for field in ["p50_us", "p99_us"] {
                    row.get_f64(field).map_err(|e| e.to_string())?;
                }
            }
        }
    }
    Ok(())
}

/// Renders an array from already-rendered element fragments.
pub fn render_array(elements: &[String]) -> String {
    let mut out = String::from("[");
    for (i, e) in elements.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(e);
    }
    out.push(']');
    out
}

/// Splits a comma-joined fragment list at top level (commas inside
/// nested brackets, braces or strings do not split).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut depth, mut start, mut in_str, mut escaped) = (0i32, 0usize, false, false);
    for (i, b) in s.bytes().enumerate() {
        if in_str {
            match b {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'[' | b'{' => depth += 1,
            b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let tail = s[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("plain"), "\"plain\"");
    }

    #[test]
    fn object_renders_in_insertion_order() {
        let obj = Object::new()
            .str_field("name", "vww")
            .u64_field("layers", 19)
            .f64_field("speedup", 3.844, 2);
        assert_eq!(
            obj.render(),
            "{\"name\": \"vww\", \"layers\": 19, \"speedup\": 3.84}"
        );
    }

    #[test]
    fn pretty_rendering_expands_arrays() {
        let rows = vec![
            Object::new().str_field("m", "a").render(),
            Object::new().str_field("m", "b").render(),
        ];
        let out = Object::new()
            .u64_field("v", 1)
            .array_field("models", &rows)
            .render_pretty();
        assert_eq!(
            out,
            "{\n  \"v\": 1,\n  \"models\": [\n    {\"m\": \"a\"},\n    {\"m\": \"b\"}\n  ]\n}"
        );
    }

    #[test]
    fn empty_array_field_renders_inline() {
        let out = Object::new().array_field("models", &[]).render_pretty();
        assert_eq!(out, "{\n  \"models\": []\n}");
    }

    #[test]
    fn nested_arrays_survive_pretty_rendering() {
        let out = Object::new()
            .array_field("grid", &["[1, 2]".to_string(), "[3, 4]".to_string()])
            .render_pretty();
        assert_eq!(out, "{\n  \"grid\": [\n    [1, 2],\n    [3, 4]\n  ]\n}");
    }

    #[test]
    fn v4_summaries_require_the_service_section() {
        let row = Object::new()
            .str_field("model", "vww")
            .f64_field("planner_construction_secs", 1.0, 6)
            .f64_field("planner_sweep_secs", 1.0, 6)
            .f64_field("percall_loop_secs", 1.0, 6)
            .f64_field("sweep_speedup", 2.0, 2)
            .render();
        let without_service = Object::new()
            .u64_field("schema_version", 4)
            .array_field("models", std::slice::from_ref(&row))
            .render_pretty();
        assert!(validate_summary(&without_service, 4)
            .unwrap_err()
            .contains("service"));
        // The same document passes as v3 (no service requirement)...
        let v3 = without_service.replace("\"schema_version\": 4", "\"schema_version\": 3");
        assert!(validate_summary(&v3, 3).is_ok());
        // ...and as v4 once the service section carries its fields.
        let service = Object::new()
            .f64_field("cache_hit_speedup", 100.0, 2)
            .f64_field("coalescing_speedup", 3.0, 2)
            .f64_field("hit_rate", 0.9, 4)
            .f64_field("throughput_rps", 5000.0, 1)
            .render();
        let with_service = Object::new()
            .u64_field("schema_version", 4)
            .array_field("models", &[row])
            .raw_field("service", service)
            .render_pretty();
        assert!(validate_summary(&with_service, 4).is_ok());
    }

    #[test]
    fn v5_summaries_require_the_kernel_fields_per_model() {
        let service = Object::new()
            .f64_field("cache_hit_speedup", 100.0, 2)
            .f64_field("coalescing_speedup", 3.0, 2)
            .f64_field("hit_rate", 0.9, 4)
            .f64_field("throughput_rps", 5000.0, 1)
            .render();
        let v4_row = Object::new()
            .str_field("model", "vww")
            .f64_field("planner_construction_secs", 1.0, 6)
            .f64_field("planner_sweep_secs", 1.0, 6)
            .f64_field("percall_loop_secs", 1.0, 6)
            .f64_field("sweep_speedup", 2.0, 2)
            .render();
        let without_kernel = Object::new()
            .u64_field("schema_version", 5)
            .array_field("models", std::slice::from_ref(&v4_row))
            .raw_field("service", service.clone())
            .render_pretty();
        assert!(validate_summary(&without_kernel, 5)
            .unwrap_err()
            .contains("kernel_fill_secs"));
        // The same rows still pass as v4...
        let v4 = without_kernel.replace("\"schema_version\": 5", "\"schema_version\": 4");
        assert!(validate_summary(&v4, 4).is_ok());
        // ...and as v5 once every row carries the kernel timings.
        let v5_row = Object::new()
            .str_field("model", "vww")
            .f64_field("planner_construction_secs", 1.0, 6)
            .f64_field("planner_sweep_secs", 1.0, 6)
            .f64_field("percall_loop_secs", 1.0, 6)
            .f64_field("sweep_speedup", 2.0, 2)
            .f64_field("kernel_fill_secs", 0.5, 6)
            .f64_field("kernel_extract_secs", 0.01, 6)
            .f64_field("incremental_speedup", 8.0, 2)
            .render();
        let with_kernel = Object::new()
            .u64_field("schema_version", 5)
            .array_field("models", &[v5_row])
            .raw_field("service", service)
            .render_pretty();
        assert!(validate_summary(&with_kernel, 5).is_ok());
    }

    #[test]
    fn v6_summaries_require_the_server_section() {
        let row = Object::new()
            .str_field("model", "vww")
            .f64_field("planner_construction_secs", 1.0, 6)
            .f64_field("planner_sweep_secs", 1.0, 6)
            .f64_field("percall_loop_secs", 1.0, 6)
            .f64_field("sweep_speedup", 2.0, 2)
            .f64_field("kernel_fill_secs", 0.5, 6)
            .f64_field("kernel_extract_secs", 0.01, 6)
            .f64_field("incremental_speedup", 8.0, 2)
            .render();
        let service = Object::new()
            .f64_field("cache_hit_speedup", 100.0, 2)
            .f64_field("coalescing_speedup", 3.0, 2)
            .f64_field("hit_rate", 0.9, 4)
            .f64_field("throughput_rps", 5000.0, 1)
            .render();
        let without_server = Object::new()
            .u64_field("schema_version", 6)
            .array_field("models", std::slice::from_ref(&row))
            .raw_field("service", service.clone())
            .render_pretty();
        assert!(validate_summary(&without_server, 6)
            .unwrap_err()
            .contains("server"));
        // The same document still passes as v5 (no server requirement)...
        let v5 = without_server.replace("\"schema_version\": 6", "\"schema_version\": 5");
        assert!(validate_summary(&v5, 5).is_ok());
        // ...and as v6 once the server section carries its fields.
        let server = Object::new()
            .u64_field("http_requests", 64)
            .f64_field("http_p50_ms", 0.4, 3)
            .f64_field("http_p99_ms", 2.5, 3)
            .u64_field("cold_solves", 8)
            .u64_field("warm_solves", 0)
            .u64_field("warm_registry_hits", 8)
            .render();
        let with_server = Object::new()
            .u64_field("schema_version", 6)
            .array_field("models", &[row])
            .raw_field("service", service)
            .raw_field("server", server)
            .render_pretty();
        assert!(validate_summary(&with_server, 6).is_ok());
    }

    #[test]
    fn v7_summaries_require_the_hot_path_fields() {
        let row = Object::new()
            .str_field("model", "vww")
            .f64_field("planner_construction_secs", 1.0, 6)
            .f64_field("planner_sweep_secs", 1.0, 6)
            .f64_field("percall_loop_secs", 1.0, 6)
            .f64_field("sweep_speedup", 2.0, 2)
            .f64_field("kernel_fill_secs", 0.5, 6)
            .f64_field("kernel_extract_secs", 0.01, 6)
            .f64_field("incremental_speedup", 8.0, 2)
            .render();
        let v6_service = Object::new()
            .f64_field("cache_hit_speedup", 100.0, 2)
            .f64_field("coalescing_speedup", 3.0, 2)
            .f64_field("hit_rate", 0.9, 4)
            .f64_field("throughput_rps", 5000.0, 1)
            .render();
        let v6_server = Object::new()
            .u64_field("http_requests", 64)
            .f64_field("http_p50_ms", 0.4, 3)
            .f64_field("http_p99_ms", 2.5, 3)
            .u64_field("cold_solves", 8)
            .u64_field("warm_solves", 0)
            .u64_field("warm_registry_hits", 8)
            .render();
        let without_hot = Object::new()
            .u64_field("schema_version", 7)
            .array_field("models", std::slice::from_ref(&row))
            .raw_field("service", v6_service.clone())
            .raw_field("server", v6_server.clone())
            .render_pretty();
        assert!(validate_summary(&without_hot, 7)
            .unwrap_err()
            .contains("allocs_per_hit"));
        // The same document still passes as v6 (no hot-path fields)...
        let v6 = without_hot.replace("\"schema_version\": 7", "\"schema_version\": 6");
        assert!(validate_summary(&v6, 6).is_ok());
        // A service with allocs_per_hit but a v6 server still fails on
        // the server's missing hot-replay fields...
        let v7_service = Object::new()
            .f64_field("cache_hit_speedup", 100.0, 2)
            .f64_field("coalescing_speedup", 3.0, 2)
            .f64_field("hit_rate", 0.9, 4)
            .f64_field("throughput_rps", 5000.0, 1)
            .f64_field("allocs_per_hit", 0.0, 3)
            .render();
        let stale_server = Object::new()
            .u64_field("schema_version", 7)
            .array_field("models", std::slice::from_ref(&row))
            .raw_field("service", v7_service.clone())
            .raw_field("server", v6_server)
            .render_pretty();
        assert!(validate_summary(&stale_server, 7)
            .unwrap_err()
            .contains("warm_p50_ms"));
        // ...and passes once both sections carry the v7 fields.
        let v7_server = Object::new()
            .u64_field("http_requests", 96)
            .f64_field("http_p50_ms", 0.4, 3)
            .f64_field("http_p99_ms", 2.5, 3)
            .f64_field("warm_p50_ms", 0.1, 3)
            .f64_field("warm_p99_ms", 0.5, 3)
            .f64_field("inline_hit_rate", 1.0, 4)
            .u64_field("cold_solves", 8)
            .u64_field("warm_solves", 0)
            .u64_field("warm_registry_hits", 8)
            .render();
        let with_hot = Object::new()
            .u64_field("schema_version", 7)
            .array_field("models", &[row])
            .raw_field("service", v7_service)
            .raw_field("server", v7_server)
            .render_pretty();
        assert!(validate_summary(&with_hot, 7).is_ok());
    }

    #[test]
    fn v8_summaries_require_the_observability_fields() {
        let row = Object::new()
            .str_field("model", "vww")
            .f64_field("planner_construction_secs", 1.0, 6)
            .f64_field("planner_sweep_secs", 1.0, 6)
            .f64_field("percall_loop_secs", 1.0, 6)
            .f64_field("sweep_speedup", 2.0, 2)
            .f64_field("kernel_fill_secs", 0.5, 6)
            .f64_field("kernel_extract_secs", 0.01, 6)
            .f64_field("incremental_speedup", 8.0, 2)
            .render();
        let service = Object::new()
            .f64_field("cache_hit_speedup", 100.0, 2)
            .f64_field("coalescing_speedup", 3.0, 2)
            .f64_field("hit_rate", 0.9, 4)
            .f64_field("throughput_rps", 5000.0, 1)
            .f64_field("allocs_per_hit", 0.0, 3)
            .render();
        let v7_server = Object::new()
            .u64_field("http_requests", 96)
            .f64_field("http_p50_ms", 0.4, 3)
            .f64_field("http_p99_ms", 2.5, 3)
            .f64_field("warm_p50_ms", 0.1, 3)
            .f64_field("warm_p99_ms", 0.5, 3)
            .f64_field("inline_hit_rate", 1.0, 4)
            .u64_field("cold_solves", 8)
            .u64_field("warm_solves", 0)
            .u64_field("warm_registry_hits", 8)
            .render();
        let without_obs = Object::new()
            .u64_field("schema_version", 8)
            .array_field("models", std::slice::from_ref(&row))
            .raw_field("service", service.clone())
            .raw_field("server", v7_server.clone())
            .render_pretty();
        assert!(validate_summary(&without_obs, 8)
            .unwrap_err()
            .contains("warm_noreceipt_p50_ms"));
        // The same document still passes as v7 (no observability fields)...
        let v7 = without_obs.replace("\"schema_version\": 8", "\"schema_version\": 7");
        assert!(validate_summary(&v7, 7).is_ok());
        // ...an empty histogram array is rejected...
        let lane = Object::new()
            .str_field("path", "inline-hit")
            .u64_field("count", 96)
            .f64_field("p50_us", 63.0, 3)
            .f64_field("p99_us", 255.0, 3)
            .render();
        let obs_server = |histograms: &[String]| {
            Object::new()
                .u64_field("http_requests", 96)
                .f64_field("http_p50_ms", 0.4, 3)
                .f64_field("http_p99_ms", 2.5, 3)
                .f64_field("warm_p50_ms", 0.1, 3)
                .f64_field("warm_p99_ms", 0.5, 3)
                .f64_field("warm_noreceipt_p50_ms", 0.095, 3)
                .f64_field("receipt_overhead_frac", 0.05, 4)
                .f64_field("inline_hit_rate", 1.0, 4)
                .u64_field("cold_solves", 8)
                .u64_field("warm_solves", 0)
                .u64_field("warm_registry_hits", 8)
                .array_field("path_histograms", histograms)
                .render()
        };
        let empty_hist = Object::new()
            .u64_field("schema_version", 8)
            .array_field("models", std::slice::from_ref(&row))
            .raw_field("service", service.clone())
            .raw_field("server", obs_server(&[]))
            .render_pretty();
        assert!(validate_summary(&empty_hist, 8)
            .unwrap_err()
            .contains("path_histograms"));
        // ...and the document passes once the server carries the before/
        // after receipt numbers and a populated per-path histogram row.
        let with_obs = Object::new()
            .u64_field("schema_version", 8)
            .array_field("models", &[row])
            .raw_field("service", service)
            .raw_field("server", obs_server(&[lane]))
            .render_pretty();
        assert!(validate_summary(&with_obs, 8).is_ok());
    }

    #[test]
    fn top_level_split_ignores_nested_commas() {
        assert_eq!(
            split_top_level("{\"a\": [1, 2]}, {\"b\": \"x,y\"}, 3"),
            vec!["{\"a\": [1, 2]}", "{\"b\": \"x,y\"}", "3"]
        );
    }
}
