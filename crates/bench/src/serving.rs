//! The shared cold/warm HTTP serving harness behind `plan_server
//! --serve` and the bench summary's `server` section.
//!
//! One measurement is three replays of the same deterministic trace over
//! real loopback sockets:
//!
//! 1. **cold**: a fresh [`PlanService`] with an *empty* on-disk
//!    [`PlanRegistry`] — every distinct request solves, and every solve
//!    is written through to disk;
//! 2. **warm**: the service is torn down and rebuilt (the simulated
//!    process restart), the registry re-opened and re-validated, and the
//!    identical trace replayed — now answered entirely from the LRU and
//!    the disk tier, with **zero** solves;
//! 3. **hot**: without tearing anything down, the trace replayed once
//!    more inside the warm pass's serve scope — every request is now an
//!    in-memory cache hit, answered on the serving hot path: zero
//!    solves, zero ticket enqueues, every hit inline, every body served
//!    from the cached artifact bytes.
//!
//! The harness asserts those contracts, not just measures them: the warm
//! pass must run no batches, write nothing back, account for every LRU
//! insert with a registry hit, and produce response bodies
//! byte-identical to the cold pass; the hot replay must additionally
//! leave the `batches` and `enqueued` counters untouched, raise
//! `inline_hits` by exactly the trace length, account for every payload
//! byte in `bytes_served`, and serve bodies byte-identical to the warm
//! ones — the end-to-end bit-identity and zero-serialization guarantees
//! of DESIGN.md, "Network serving & artifact registry" and "Serving hot
//! path". With receipts enabled (the default), every plan response must
//! additionally carry an `X-Plan-Receipt` header whose `hash=` field is
//! the FNV-1a of exactly the body bytes the client read — the receipt
//! contract of DESIGN.md, "Observability: receipts, metrics & trace
//! replay".

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use dae_dvfs::{
    PlanRegistry, PlanServer, PlanService, Planner, ServerConfig, ServiceConfig, ServiceStats,
};

use crate::httpc;

/// One pass's latency distribution and service counters.
#[derive(Debug)]
pub struct PassStats {
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Wall-clock of the whole replay.
    pub total_secs: f64,
    /// The service's counters after the pass.
    pub stats: ServiceStats,
}

/// All three passes of a cold/warm/hot serving measurement.
#[derive(Debug)]
pub struct ServingMeasurement {
    /// The cold pass (empty registry; every distinct request solves).
    pub cold: PassStats,
    /// The warm pass (after the simulated restart; zero solves,
    /// answered from the disk tier into the LRU).
    pub warm: PassStats,
    /// The hot replay (same process as the warm pass; every request an
    /// inline in-memory hit — the serving hot path CI tracks).
    pub hot: PassStats,
    /// Requests served across all passes.
    pub http_requests: u64,
}

/// Extracts the `hash=<hex16>` field of an `X-Plan-Receipt` header
/// value as the plan hash it claims.
pub fn receipt_hash(receipt: &str) -> Option<u64> {
    receipt
        .split(';')
        .find_map(|field| field.strip_prefix("hash="))
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
}

/// Asserts the receipt contract over one replay: every response carries
/// a receipt whose claimed plan hash is the FNV-1a of exactly the body
/// bytes the client read.
fn assert_receipts(replay: &httpc::Replay, what: &str) {
    assert_eq!(replay.receipts.len(), replay.bodies.len());
    for (i, (receipt, body)) in replay.receipts.iter().zip(&replay.bodies).enumerate() {
        let receipt = receipt
            .as_deref()
            .unwrap_or_else(|| panic!("{what} request {i} came back without a receipt"));
        assert_eq!(
            receipt_hash(receipt),
            Some(dae_dvfs::obs::plan_hash(body.as_bytes())),
            "{what} request {i}: receipt hash must pin the served body bytes ({receipt})"
        );
    }
}

/// Runs one pass: fresh service over `planners`, registry attached from
/// `registry_dir`, `trace` replayed by `clients` connections at a time.
/// With `hot` set the trace is replayed a second time inside the same
/// serve scope and the hot-path invariants are asserted on the counter
/// deltas. Returns the pass stats, the first replay's bodies in trace
/// order, and the hot replay's stats when it ran.
fn pass(
    planners: &[(String, Arc<Planner>)],
    service_config: &ServiceConfig,
    server_config: &ServerConfig,
    trace: &[(String, String)],
    registry_dir: &Path,
    clients: usize,
    hot: bool,
) -> (PassStats, Vec<String>, Option<PassStats>) {
    let mut service = PlanService::new(service_config.clone()).expect("service config validates");
    let keys: Vec<_> = planners
        .iter()
        .map(|(_, planner)| service.register(planner.clone()))
        .collect();
    service
        .attach_registry(PlanRegistry::open(registry_dir).expect("registry opens"))
        .expect("registry re-validation walks the directory");
    let t = Instant::now();
    let (replay, mid_stats, hot_pass) = service.run(|svc| {
        let mut server =
            PlanServer::new(svc, server_config.clone()).expect("server config validates");
        for ((name, _), key) in planners.iter().zip(&keys) {
            server = server.route(name, *key).expect("route registers");
        }
        server
            .serve(|handle| -> std::io::Result<_> {
                let replay = httpc::replay_posts(handle.addr(), trace, clients)?;
                if server_config.receipts {
                    assert_receipts(&replay, if hot { "warm" } else { "cold" });
                }
                if !hot {
                    return Ok((replay, None, None));
                }
                // The hot replay: same process, same sockets, LRU fully
                // warm — every request must ride the inline fast path.
                let mid = svc.stats();
                let t_hot = Instant::now();
                let hot_replay = httpc::replay_posts(handle.addr(), trace, clients)?;
                let hot_secs = t_hot.elapsed().as_secs_f64();
                if server_config.receipts {
                    assert_receipts(&hot_replay, "hot");
                }
                let after = svc.stats();
                assert_eq!(
                    after.batches, mid.batches,
                    "the hot replay must not run a single solve batch"
                );
                assert_eq!(
                    after.enqueued, mid.enqueued,
                    "the hot replay must not enqueue a single ticket"
                );
                assert_eq!(
                    after.inline_hits - mid.inline_hits,
                    trace.len() as u64,
                    "every hot request must be an inline cache hit"
                );
                let hot_bytes: u64 = hot_replay.bodies.iter().map(|b| b.len() as u64).sum();
                assert_eq!(
                    after.bytes_served - mid.bytes_served,
                    hot_bytes,
                    "bytes_served must account for every hot payload byte"
                );
                assert_eq!(
                    hot_replay.bodies, replay.bodies,
                    "hot responses must be byte-identical to the warm ones"
                );
                Ok((
                    replay,
                    Some(mid),
                    Some(PassStats {
                        p50_ms: hot_replay.percentile_ms(0.5),
                        p99_ms: hot_replay.percentile_ms(0.99),
                        total_secs: hot_secs,
                        stats: after,
                    }),
                ))
            })
            .expect("server binds an ephemeral loopback port")
            .expect("every replayed request answered")
    });
    let total_secs = t.elapsed().as_secs_f64();
    // The pass's own counters exclude the hot replay's traffic: when it
    // ran, use the snapshot taken between the two replays.
    let stats = mid_stats.unwrap_or_else(|| service.stats());
    (
        PassStats {
            p50_ms: replay.percentile_ms(0.5),
            p99_ms: replay.percentile_ms(0.99),
            total_secs,
            stats,
        },
        replay.bodies,
        hot_pass,
    )
}

/// Runs the full cold/warm/hot measurement over `trace` (`(URL path,
/// JSON body)` POST pairs — the route is the body's `"planner"` field)
/// and asserts the restart and hot-path contracts along the way; see the
/// module docs. `registry_dir` is wiped first so the cold pass is
/// genuinely cold.
pub fn measure_serving(
    planners: &[(String, Arc<Planner>)],
    service_config: &ServiceConfig,
    server_config: &ServerConfig,
    trace: &[(String, String)],
    registry_dir: &Path,
    clients: usize,
) -> ServingMeasurement {
    let _ = std::fs::remove_dir_all(registry_dir);

    let (cold, cold_bodies, _) = pass(
        planners,
        service_config,
        server_config,
        trace,
        registry_dir,
        clients,
        false,
    );
    assert_eq!(
        cold.stats.registry_hits, 0,
        "a wiped registry cannot answer the cold pass"
    );
    assert_eq!(
        cold.stats.registry_writes, cold.stats.cache.inserted,
        "every cold solve must be written through to the registry"
    );
    assert!(cold.stats.batches > 0, "the cold pass must actually solve");

    // The simulated restart: the first service (and its LRU) is gone;
    // only the registry directory carries state across. The hot replay
    // rides inside this pass's serve scope.
    let (warm, warm_bodies, hot) = pass(
        planners,
        service_config,
        server_config,
        trace,
        registry_dir,
        clients,
        true,
    );
    let hot = hot.expect("the warm pass runs the hot replay");
    assert_eq!(
        warm.stats.batches, 0,
        "the warm pass must be answered without a single solve: {:?}",
        warm.stats
    );
    assert_eq!(
        warm.stats.registry_writes, 0,
        "nothing new to write back on the warm pass"
    );
    assert_eq!(
        warm.stats.registry_hits, warm.stats.cache.inserted,
        "every warm LRU insert must come off disk"
    );
    assert_eq!(
        warm.stats.quarantined, 0,
        "the registry's own writes must re-validate cleanly"
    );
    assert_eq!(
        cold_bodies, warm_bodies,
        "restart bit-identity: warm responses must be byte-identical to cold ones"
    );

    ServingMeasurement {
        http_requests: (cold_bodies.len() + 2 * warm_bodies.len()) as u64,
        cold,
        warm,
        hot,
    }
}
