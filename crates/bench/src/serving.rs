//! The shared cold/warm HTTP serving harness behind `plan_server
//! --serve` and the bench summary's `server` section.
//!
//! One measurement is two passes of the same deterministic trace over
//! real loopback sockets:
//!
//! 1. **cold**: a fresh [`PlanService`] with an *empty* on-disk
//!    [`PlanRegistry`] — every distinct request solves, and every solve
//!    is written through to disk;
//! 2. **warm**: the service is torn down and rebuilt (the simulated
//!    process restart), the registry re-opened and re-validated, and the
//!    identical trace replayed — now answered entirely from the LRU and
//!    the disk tier, with **zero** solves.
//!
//! The harness asserts the restart contract, not just measures it: the
//! warm pass must run no batches, write nothing back, account for every
//! LRU insert with a registry hit, and produce response bodies
//! byte-identical to the cold pass — the end-to-end restart bit-identity
//! guarantee of DESIGN.md, "Network serving & artifact registry".

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use dae_dvfs::{
    PlanRegistry, PlanServer, PlanService, Planner, ServerConfig, ServiceConfig, ServiceStats,
};

use crate::httpc;

/// One pass's latency distribution and service counters.
#[derive(Debug)]
pub struct PassStats {
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Wall-clock of the whole replay.
    pub total_secs: f64,
    /// The service's counters after the pass.
    pub stats: ServiceStats,
}

/// Both passes of a cold/warm serving measurement.
#[derive(Debug)]
pub struct ServingMeasurement {
    /// The cold pass (empty registry; every distinct request solves).
    pub cold: PassStats,
    /// The warm pass (after the simulated restart; zero solves).
    pub warm: PassStats,
    /// Requests served across both passes.
    pub http_requests: u64,
}

/// Runs one pass: fresh service over `planners`, registry attached from
/// `registry_dir`, `trace` replayed by `clients` connections at a time.
/// Returns the pass stats plus the response bodies in trace order.
fn pass(
    planners: &[(String, Arc<Planner>)],
    service_config: &ServiceConfig,
    server_config: &ServerConfig,
    trace: &[(String, String)],
    registry_dir: &Path,
    clients: usize,
) -> (PassStats, Vec<String>) {
    let mut service = PlanService::new(service_config.clone()).expect("service config validates");
    let keys: Vec<_> = planners
        .iter()
        .map(|(_, planner)| service.register(planner.clone()))
        .collect();
    service
        .attach_registry(PlanRegistry::open(registry_dir).expect("registry opens"))
        .expect("registry re-validation walks the directory");
    let t = Instant::now();
    let replay = service.run(|svc| {
        let mut server =
            PlanServer::new(svc, server_config.clone()).expect("server config validates");
        for ((name, _), key) in planners.iter().zip(&keys) {
            server = server.route(name, *key).expect("route registers");
        }
        server
            .serve(|handle| httpc::replay_posts(handle.addr(), trace, clients))
            .expect("server binds an ephemeral loopback port")
            .expect("every replayed request answered")
    });
    let total_secs = t.elapsed().as_secs_f64();
    let stats = service.stats();
    (
        PassStats {
            p50_ms: replay.percentile_ms(0.5),
            p99_ms: replay.percentile_ms(0.99),
            total_secs,
            stats,
        },
        replay.bodies,
    )
}

/// Runs the full cold/warm measurement over `trace` (`(URL path, JSON
/// body)` POST pairs — the route is the body's `"planner"` field) and
/// asserts the restart contract along the way; see the module docs.
/// `registry_dir` is wiped first so the cold pass is genuinely cold.
pub fn measure_serving(
    planners: &[(String, Arc<Planner>)],
    service_config: &ServiceConfig,
    server_config: &ServerConfig,
    trace: &[(String, String)],
    registry_dir: &Path,
    clients: usize,
) -> ServingMeasurement {
    let _ = std::fs::remove_dir_all(registry_dir);

    let (cold, cold_bodies) = pass(
        planners,
        service_config,
        server_config,
        trace,
        registry_dir,
        clients,
    );
    assert_eq!(
        cold.stats.registry_hits, 0,
        "a wiped registry cannot answer the cold pass"
    );
    assert_eq!(
        cold.stats.registry_writes, cold.stats.cache.inserted,
        "every cold solve must be written through to the registry"
    );
    assert!(cold.stats.batches > 0, "the cold pass must actually solve");

    // The simulated restart: the first service (and its LRU) is gone;
    // only the registry directory carries state across.
    let (warm, warm_bodies) = pass(
        planners,
        service_config,
        server_config,
        trace,
        registry_dir,
        clients,
    );
    assert_eq!(
        warm.stats.batches, 0,
        "the warm pass must be answered without a single solve: {:?}",
        warm.stats
    );
    assert_eq!(
        warm.stats.registry_writes, 0,
        "nothing new to write back on the warm pass"
    );
    assert_eq!(
        warm.stats.registry_hits, warm.stats.cache.inserted,
        "every warm LRU insert must come off disk"
    );
    assert_eq!(
        warm.stats.quarantined, 0,
        "the registry's own writes must re-validate cleanly"
    );
    assert_eq!(
        cold_bodies, warm_bodies,
        "restart bit-identity: warm responses must be byte-identical to cold ones"
    );

    ServingMeasurement {
        http_requests: (cold_bodies.len() + warm_bodies.len()) as u64,
        cold,
        warm,
    }
}
