//! FIG2 — Power of iso-frequency {HSE, PLLM, PLLN} configurations.
//!
//! Reproduces Fig. 2 of the paper: the same SYSCLK can be generated through
//! different PLL parameterizations, and the chosen combination strongly
//! affects board power (through the hidden VCO frequency). The workload is
//! the paper's microbenchmark: a loop of repetitive additions.
//!
//! Run with: `cargo run --release -p repro-bench --bin fig2_iso_frequency`

use mcu_sim::{Machine, MemoryTraffic, OpCounts, Segment};
use stm32_power::{Ina219, PowerModel, Watts};
use stm32_rcc::{ConfigSpace, SysclkConfig};

fn main() {
    let model = PowerModel::nucleo_f767zi();
    let mut sensor = Ina219::new(Default::default());

    // The add-loop microbenchmark: pure ALU work.
    let adds = Segment::compute(
        "add-loop",
        OpCounts {
            alu: 10_000_000,
            branch: 1_000_000,
            ..OpCounts::ZERO
        },
        MemoryTraffic::ZERO,
    );

    println!("FIG2: iso-frequency clock configurations vs power (add-loop microbenchmark)");
    println!(
        "{:>8} | {:>22} | {:>8} | {:>11} | {:>11} | {:>10}",
        "SYSCLK", "{HSE,PLLM,PLLN}/PLLP", "VCO", "P model", "P INA219", "t loop"
    );
    repro_bench::rule(88);

    for group in ConfigSpace::wide().iso_frequency_groups() {
        if group.configs.len() < 2 {
            continue;
        }
        for cfg in &group.configs {
            let sys = SysclkConfig::Pll(*cfg);
            let p_true = model.run_power(&sys);
            let p_meas = sensor.sample(p_true);
            let mut machine = Machine::new(sys);
            let dt = machine.run_segment(&adds);
            let (hse, m, n) = cfg.label_tuple();
            println!(
                "{:>8} | {:>22} | {:>8} | {:>9.1} mW | {:>9.1} mW | {:>7.2} ms",
                repro_bench::mhz(group.sysclk),
                format!("{{{hse},{m},{n}}}/{}", cfg.pllp()),
                repro_bench::mhz(cfg.vco_output()),
                p_true.as_mw(),
                p_meas.as_mw(),
                dt * 1e3
            );
        }
        let cool = model.run_power(&SysclkConfig::Pll(*group.coolest()));
        let hot = model.run_power(&SysclkConfig::Pll(*group.hottest()));
        let gap = (hot.as_f64() - cool.as_f64()) / cool.as_f64() * 100.0;
        println!(
            "{:>8} | iso-frequency power gap: {:.1}%",
            repro_bench::mhz(group.sysclk),
            gap
        );
        repro_bench::rule(88);
    }

    summarize(&model);
}

fn summarize(model: &PowerModel) {
    let mut worst: Option<(u64, f64)> = None;
    for group in ConfigSpace::wide().iso_frequency_groups() {
        if group.configs.len() < 2 {
            continue;
        }
        let cool: Watts = model.run_power(&SysclkConfig::Pll(*group.coolest()));
        let hot: Watts = model.run_power(&SysclkConfig::Pll(*group.hottest()));
        let gap = (hot.as_f64() - cool.as_f64()) / cool.as_f64() * 100.0;
        if worst.is_none_or(|(_, g)| gap > g) {
            worst = Some((group.sysclk.as_u64() / 1_000_000, gap));
        }
    }
    if let Some((mhz, gap)) = worst {
        println!("\nLargest iso-frequency gap: {gap:.1}% at {mhz} MHz");
        println!("(paper reports a ~50% gap at 100 MHz between {{50,25,216}} and {{16,8,100}})");
    }
}
