//! ABLATION — Sensitivity to the L1 D-cache size.
//!
//! Runs the pipeline with 8 / 16 / 32 KB caches. Cache size moves the DAE
//! sweet spot: small caches punish large granularities (staging spills),
//! large caches let the baseline keep more of the tensor resident and
//! shrink DAE's advantage.
//!
//! Run with: `cargo run --release -p repro-bench --bin ablation_cache`

use dae_dvfs::{DseConfig, FrequencyMap, Planner};
use mcu_sim::cache::CacheConfig;
use repro_bench::models;

fn main() {
    println!("ABLATION: cache-size sensitivity (30% slack)");
    println!(
        "{:>18} | {:>8} | {:>12} | {:>12} | {:>8}",
        "model", "cache", "inference", "window E", "avg g"
    );
    repro_bench::rule(70);

    for model in models() {
        for kb in [8u32, 16, 32] {
            let mut cfg = DseConfig::paper();
            cfg.cache = CacheConfig {
                size_bytes: kb * 1024,
                line_bytes: 32,
                ways: 4,
            };
            // Each cache geometry needs its own compiled schedules, so a
            // fresh planner per configuration is the correct granularity.
            let planner = Planner::new(&model, &cfg).expect("planner builds");
            let report = planner.run(0.30).expect("pipeline runs");
            let map = FrequencyMap::from_plan(&report.plan, 0.30);
            let dae_rows: Vec<_> = map.rows.iter().filter(|r| r.granularity > 0).collect();
            let avg_g = if dae_rows.is_empty() {
                0.0
            } else {
                dae_rows
                    .iter()
                    .map(|r| f64::from(r.granularity))
                    .sum::<f64>()
                    / dae_rows.len() as f64
            };
            println!(
                "{:>18} | {:>5} KB | {:>9.3} ms | {:>9.3} mJ | {:>8.1}",
                model.name,
                kb,
                report.inference_secs * 1e3,
                report.total_energy.as_mj(),
                avg_g
            );
        }
        repro_bench::rule(70);
    }
}
