//! FIG3 (step 2B) — per-layer Pareto curves.
//!
//! The paper's Fig. 3 pipeline shows, per layer, the latency/energy cloud
//! of all (g, f) configurations reduced to its Pareto front before entering
//! the MCKP. This binary prints those fronts for the most expensive
//! depthwise and pointwise layer of each model.
//!
//! Run with: `cargo run --release -p repro-bench --bin fig3_pareto`

use dae_dvfs::{DseConfig, Planner};
use repro_bench::models;
use tinynn::LayerKind;

fn main() {
    let cfg = DseConfig::paper();
    for model in models() {
        let planner = Planner::for_target(repro_bench::target(), &model).expect("planner builds");
        for kind in [LayerKind::Depthwise, LayerKind::Pointwise] {
            let Some((idx, layer)) = planner
                .layers()
                .iter()
                .enumerate()
                .filter(|(_, l)| l.profile().kind == kind)
                .max_by_key(|(_, l)| l.profile().baseline_ops().mac)
            else {
                continue;
            };
            let profile = layer.profile();
            let cloud = cfg.modes.hfo.len() * layer.granularities().count();
            let front = &planner.fronts()[idx];
            println!(
                "\n{} / {} ({kind}): {cloud} DSE points -> {} Pareto-optimal",
                model.name,
                profile.name,
                front.len()
            );
            println!(
                "  {:>6} | {:>9} | {:>12} | {:>12} | {:>8}",
                "g", "HFO", "latency", "energy", "switches"
            );
            for pt in front {
                println!(
                    "  {:>6} | {:>5} MHz | {:>9.3} ms | {:>9.4} mJ | {:>8}",
                    pt.granularity.0,
                    pt.hfo.sysclk().as_u64() / 1_000_000,
                    pt.latency_secs * 1e3,
                    pt.energy.as_mj(),
                    pt.switches
                );
            }
        }
    }
    println!("\n(each front is one MCKP class; fronts are strictly decreasing in energy)");
}
