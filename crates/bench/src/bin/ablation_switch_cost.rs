//! ABLATION — Sensitivity to the PLL re-lock cost.
//!
//! Sweeps the re-lock penalty from 0 to 1 ms and reports the energy of the
//! optimized deployment for VWW at 30 % slack. Large re-lock costs push
//! the optimizer toward coarser granularities and uniform frequencies.
//!
//! Run with: `cargo run --release -p repro-bench --bin ablation_switch_cost`

use dae_dvfs::{DseConfig, FrequencyMap, Planner};
use stm32_rcc::SwitchCostModel;
use tinyengine::{qos_window, TinyEngine};
use tinynn::models::vww;

fn main() {
    let model = vww();
    let baseline = TinyEngine::new()
        .run(&model)
        .expect("baseline")
        .total_time_secs;
    let qos = qos_window(baseline, 0.30);

    println!("ABLATION: PLL re-lock cost sensitivity (VWW, 30% slack)");
    println!(
        "{:>12} | {:>12} | {:>12} | {:>10} | {:>8}",
        "re-lock", "latency", "energy", "avg g>0", "distinct f"
    );
    repro_bench::rule(68);

    for relock_us in [0.0, 50.0, 100.0, 200.0, 500.0, 1000.0] {
        let mut cfg = DseConfig::paper();
        cfg.switch_model = SwitchCostModel::new(relock_us * 1e-6, 1e-6);
        // Switch costs are priced at replay time, but they feed the DSE
        // points too, so each cost level gets its own planner.
        let plan = Planner::new(&model, &cfg)
            .expect("planner builds")
            .optimize(qos)
            .expect("optimize succeeds");
        let map = FrequencyMap::from_plan(&plan, 0.30);
        let dae_layers: Vec<_> = map.rows.iter().filter(|r| r.granularity > 0).collect();
        let avg_g = if dae_layers.is_empty() {
            0.0
        } else {
            dae_layers
                .iter()
                .map(|r| f64::from(r.granularity))
                .sum::<f64>()
                / dae_layers.len() as f64
        };
        let distinct: std::collections::BTreeSet<_> = map.rows.iter().map(|r| r.hfo).collect();
        println!(
            "{:>9.0} µs | {:>9.3} ms | {:>9.3} mJ | {:>10.1} | {:>8}",
            relock_us,
            plan.predicted_latency_secs * 1e3,
            plan.predicted_energy.as_mj(),
            avg_g,
            distinct.len()
        );
    }
    println!("expectation: energy weakly increases with the re-lock cost");
}
