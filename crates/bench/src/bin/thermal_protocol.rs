//! Thermal-drift measurement protocol (paper Sec. IV).
//!
//! "To mitigate potential variations arising from temperature-induced power
//! fluctuations, we systematically compared each power measurement with the
//! power consumption of the baseline input model at the corresponding
//! timestamp." This binary simulates a warming board over a long
//! measurement campaign and shows raw vs compensated readings.
//!
//! Run with: `cargo run --release -p repro-bench --bin thermal_protocol`

use stm32_power::{BaselineReference, Ina219, ThermalModel, ThermalState, Watts};

fn main() {
    let model = ThermalModel::nucleo_still_air();
    let mut state = ThermalState::new(&model);
    let mut sensor = Ina219::new(Default::default());
    let mut reference = BaselineReference::new();

    let baseline_electrical = Watts::milliwatts(298.0); // TinyEngine @ 216 MHz
    let candidate_electrical = Watts::milliwatts(211.0); // DAE+DVFS average

    println!("Thermal drift over a 10-minute campaign (baseline-compensated protocol)");
    println!(
        "{:>8} | {:>8} | {:>12} | {:>12} | {:>12}",
        "time", "die T", "baseline raw", "cand. raw", "cand. comp."
    );
    repro_bench::rule(64);

    let mut t = 0.0;
    for minute in 0..=10 {
        // Interleave baseline and candidate runs, as the paper's protocol
        // does, while the board warms under load.
        let base_raw = sensor.sample(state.observed_power(&model, baseline_electrical));
        reference.record(t, base_raw);
        let cand_raw = sensor.sample(state.observed_power(&model, candidate_electrical));
        let cand_comp = reference.compensate(cand_raw, t);
        println!(
            "{:>5} min | {:>6.1} C | {:>9.1} mW | {:>9.1} mW | {:>9.1} mW",
            minute,
            state.temperature_c(),
            base_raw.as_mw(),
            cand_raw.as_mw(),
            cand_comp.as_mw()
        );
        // One minute of mixed load.
        state.step(&model, Watts::milliwatts(255.0), 60.0);
        t += 60.0;
    }

    println!(
        "\ntrue candidate power: {:.1} mW — the compensated column stays on it while",
        candidate_electrical.as_mw()
    );
    println!("the raw column drifts with leakage as the die warms");
}
