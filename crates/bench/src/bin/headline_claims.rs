//! TAB-HEAD — The paper's headline claims, checked in one run.
//!
//! * up to 25.2 % less energy than TinyEngine;
//! * up to 7.2 % less energy than TinyEngine + clock gating;
//! * MBV2: relaxing QoS from 10 % to 50 % cuts our energy by 20.4 %.
//!
//! Run with: `cargo run --release -p repro-bench --bin headline_claims`

use dae_dvfs::Planner;
use repro_bench::{models, SLACKS};

fn main() {
    let mut max_te: f64 = 0.0;
    let mut max_cg: f64 = 0.0;
    let mut mbv2_tight = None;
    let mut mbv2_relaxed = None;

    for model in models() {
        let planner = Planner::for_target(repro_bench::target(), &model).expect("planner builds");
        let comparisons = planner.compare_sweep(&SLACKS).expect("comparison runs");
        for (slack, cmp) in SLACKS.iter().copied().zip(comparisons) {
            max_te = max_te.max(cmp.gain_vs_tinyengine_pct());
            max_cg = max_cg.max(cmp.gain_vs_gated_pct());
            if model.name == "mobilenet-v2" {
                // Normalize to energy-per-second of window so different
                // window lengths compare fairly.
                let rate = cmp.ours.as_f64() / cmp.qos_secs;
                if slack == 0.10 {
                    mbv2_tight = Some(rate);
                }
                if slack == 0.50 {
                    mbv2_relaxed = Some(rate);
                }
            }
        }
    }

    println!("TAB-HEAD: headline claims");
    repro_bench::rule(72);
    println!("max energy gain vs TinyEngine:             {max_te:5.1}%  (paper: up to 25.2%)");
    println!("max energy gain vs TinyEngine+ClockGating: {max_cg:5.1}%  (paper: up to  7.2%)");
    if let (Some(t), Some(r)) = (mbv2_tight, mbv2_relaxed) {
        let drop = (t - r) / t * 100.0;
        println!("MBV2 avg-power drop, 50% vs 10% QoS:       {drop:5.1}%  (paper: 20.4%)");
    }
    repro_bench::rule(72);
    let ok = max_te > 0.0 && max_cg > 0.0;
    println!("qualitative claims hold: {}", if ok { "YES" } else { "NO" });
}
