//! FIG6 — Per-layer HFO frequency and granularity maps for tight vs
//! relaxed QoS.
//!
//! Reproduces Fig. 6 of the paper: for each model and QoS ∈ {10 %, 50 %},
//! the chosen HFO frequency and DAE granularity per layer, plus the
//! aggregate observations the paper reports (pointwise layers get the
//! maximum frequency more often than depthwise; tight QoS pushes more
//! layers to 216 MHz; relaxed QoS pushes granularities toward 16).
//!
//! Run with: `cargo run --release -p repro-bench --bin fig6_frequency_map`

use dae_dvfs::{FrequencyMap, Planner};
use repro_bench::{fig6_stats, models};
use tinyengine::qos_window;

fn main() {
    for model in models() {
        // One planner per model: both QoS maps reuse the same DSE sweep.
        let planner = Planner::for_target(repro_bench::target(), &model).expect("planner builds");
        let baseline = planner.baseline_latency().expect("baseline runs");
        let mut maps = Vec::new();
        for slack in [0.10, 0.50] {
            let plan = planner
                .optimize(qos_window(baseline, slack))
                .expect("optimization succeeds");
            maps.push(FrequencyMap::from_plan(&plan, slack));
        }
        let (tight, relaxed) = (&maps[0], &maps[1]);

        println!("\nFIG6: {} — per-layer map (granularity@MHz)", model.name);
        println!(
            "{:>16} | {:>10} | {:>12} | {:>12}",
            "layer", "type", "QoS 10%", "QoS 50%"
        );
        repro_bench::rule(60);
        for (t, r) in tight.rows.iter().zip(&relaxed.rows) {
            println!(
                "{:>16} | {:>10} | {:>4}@{:>6} | {:>4}@{:>6}",
                t.name,
                t.kind.to_string(),
                t.granularity,
                repro_bench::mhz(t.hfo),
                r.granularity,
                repro_bench::mhz(r.hfo)
            );
        }

        let st = fig6_stats(tight);
        let sr = fig6_stats(relaxed);
        println!("\n  observations ({}):", model.name);
        println!(
            "  pointwise at 216 MHz: {:.1}% vs depthwise {:.1}% (paper: 58.8% vs 21.4%)",
            st.pw_at_max * 100.0,
            st.dw_at_max * 100.0
        );
        println!(
            "  at <=100 MHz: pointwise {:.1}%, depthwise {:.1}% (paper: 46.1% / 43.4%)",
            sr.pw_low * 100.0,
            sr.dw_low * 100.0
        );
        println!(
            "  layers at 216 MHz, tight vs relaxed: {:.1}% vs {:.1}% (paper: +18.6% when tight)",
            st.all_at_max * 100.0,
            sr.all_at_max * 100.0
        );
        println!(
            "  granularity 16 share, relaxed vs tight: {:.1}% vs {:.1}% (paper: +22.3% when relaxed)",
            sr.g16_share * 100.0,
            st.g16_share * 100.0
        );
    }
}
