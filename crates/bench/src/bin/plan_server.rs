//! PLAN-SERVER — synthetic multi-tenant trace replay through the
//! concurrent plan-serving subsystem.
//!
//! Builds planners for a mix of models × targets, generates a
//! deterministic request trace with hot-key skew (a few
//! `(tenant, budget)` pairs dominate, the tail spreads over many QoS
//! levels, solvers and jittered absolute windows), then answers the
//! trace two ways:
//!
//! 1. **serial**: `Planner::plan` per request, no cache, no coalescing —
//!    what N independent callers would pay;
//! 2. **served**: the same trace through a `PlanService` (fingerprint
//!    cache + single-flight + shared-grid coalescing) from several
//!    submitter threads.
//!
//! Prints the service stats (throughput, hit rate, batch shape) and the
//! end-to-end speedup, and verifies the serving invariants: cache
//! counters account for every request, and sampled answers are
//! bit-identical to their serial reference (`Planner::plan` in exact
//! mode, singleton `Planner::sweep` in the default swept mode).
//!
//! With `--serve` (alias `--http-trace`) the same deterministic trace is
//! instead replayed **over real loopback sockets** against the
//! `PlanServer` HTTP front end, three times: a cold pass against an
//! empty on-disk `PlanRegistry`; then — after tearing the service down
//! and rebuilding it (the simulated process restart) — a warm pass that
//! must be answered entirely from the re-opened registry without a
//! single solve, byte-identical to the cold responses; then a hot replay
//! in the same process that must ride the inline fast path end-to-end —
//! zero solves, zero ticket enqueues, every request an inline cache hit
//! served from the cached artifact bytes (asserted by the harness, so
//! `--serve --smoke` gates on them — including a receipt on every
//! response whose hash pins the served bytes). Prints request latency
//! percentiles and the per-pass solve split, then runs the **record →
//! replay gate**: the same trace is recorded through a trace-streaming
//! server (`PlanServer::trace_to`) and the resulting JSONL is replayed
//! offline through a fresh service + registry, demanding per-request
//! plan-hash equality against the recorded receipts.
//!
//! With `--replay <trace.jsonl>` a previously recorded trace is replayed
//! the same way on its own: requests are re-driven in arrival order and
//! every response's plan hash is checked against the receipt the
//! recording server vouched for — byte-level reproducibility across
//! processes, machines and time.
//!
//! Run with: `cargo run --release -p repro-bench --bin plan_server`
//! CI smoke: `… --bin plan_server -- --smoke` and
//! `… --bin plan_server -- --serve --smoke` (small traces; exit
//! non-zero if any invariant fails).
//! Flags: `--requests N`, `--workers N`, `--exact` (per-request solves
//! instead of shared-grid coalescing), `--serve` (HTTP replay),
//! `--replay <trace.jsonl>` (offline replay of a recorded trace).

use std::sync::Arc;
use std::time::{Duration, Instant};

use dae_dvfs::{
    CoalesceMode, GenericCortexMTarget, OperatingModes, PlanRegistry, PlanRequest, PlanServer,
    PlanService, Planner, PlannerKey, QosBudget, ServerConfig, ServiceConfig, Solver,
    Stm32F767Target, Target,
};
use repro_bench::{httpc, json, serving};
use stm32_rcc::Hertz;
use tinyengine::qos_window;
use tinynn::models::synth::SplitMix64;

/// One tenant: a planner plus its submission key and baseline latency.
struct Tenant {
    name: String,
    key: PlannerKey,
    baseline: f64,
}

/// A trace entry: which tenant asks, and what for.
struct TraceRequest {
    tenant: usize,
    request: PlanRequest,
}

/// The QoS slack levels the trace draws from.
const SLACKS: [f64; 10] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.85, 0.95];

fn build_planners() -> Vec<(String, Arc<Planner>)> {
    let f767 = Stm32F767Target::paper();
    // A second, genuinely different platform: a leaner clock ladder, so
    // its plans (and its config fingerprint) differ from the F767's.
    let lean = GenericCortexMTarget::new("cortex-m-lean").with_modes(
        OperatingModes::from_sysclks(
            Hertz::mhz(50),
            Hertz::mhz(50),
            &[Hertz::mhz(80), Hertz::mhz(120), Hertz::mhz(160)],
        )
        .expect("lean ladder reachable"),
    );
    let vww = tinynn::models::vww_sized(32);
    let pd = tinynn::models::person_detection_sized(32);
    vec![
        (
            format!("{}@{}", vww.name, f767.id()),
            Arc::new(Planner::for_target(f767.clone(), &vww).expect("planner builds")),
        ),
        (
            format!("{}@{}", vww.name, lean.id()),
            Arc::new(Planner::for_target(lean.clone(), &vww).expect("planner builds")),
        ),
        (
            format!("{}@{}", pd.name, f767.id()),
            Arc::new(Planner::for_target(f767, &pd).expect("planner builds")),
        ),
        (
            format!("{}@{}", pd.name, lean.id()),
            Arc::new(Planner::for_target(lean, &pd).expect("planner builds")),
        ),
    ]
}

/// Deterministic multi-tenant trace with hot-key skew: `hot_share` of
/// requests replay one of a handful of hot `(tenant, request)` pairs;
/// the tail mixes slack levels, solvers and jittered absolute windows.
/// Takes bare baselines (not `Tenant`s) so the HTTP serve mode can build
/// the trace before any service exists to hand out keys.
fn generate_trace(baselines: &[f64], requests: usize, rng: &mut SplitMix64) -> Vec<TraceRequest> {
    let hot: Vec<(usize, PlanRequest)> = vec![
        (0, PlanRequest::slack(0.3)),
        (0, PlanRequest::slack(0.5)),
        (1, PlanRequest::slack(0.3)),
        (2, PlanRequest::slack(0.1)),
        (0, PlanRequest::slack(0.3).with_solver(Solver::SequenceDp)),
    ];
    (0..requests)
        .map(|_| {
            let roll = rng.next_u64() % 100;
            if roll < 70 {
                // Hot keys: 70% of traffic replays 5 request shapes.
                let (tenant, request) = &hot[(rng.next_u64() % hot.len() as u64) as usize];
                TraceRequest {
                    tenant: *tenant,
                    request: request.clone(),
                }
            } else {
                let tenant = (rng.next_u64() % baselines.len() as u64) as usize;
                let slack = SLACKS[(rng.next_u64() % SLACKS.len() as u64) as usize];
                let request = if roll < 85 {
                    PlanRequest::slack(slack)
                } else {
                    // Absolute windows with sub-quantum jitter: the
                    // service's QoS quantum coalesces these onto shared
                    // cache entries.
                    let jitter = (rng.next_u64() % 1000) as f64 * 1e-9;
                    PlanRequest::qos(qos_window(baselines[tenant], slack) + jitter)
                };
                let request = if roll >= 97 {
                    request.with_solver(Solver::SequenceDp)
                } else {
                    request
                };
                TraceRequest { tenant, request }
            }
        })
        .collect()
}

/// Serializes one trace request as the `POST /v1/plan` JSON body the
/// HTTP front end decodes. `f64` `Display` prints the shortest exact
/// round-trip form, so the body re-parses to the bit-identical budget.
fn request_body(route: &str, request: &PlanRequest) -> String {
    let mut fields = vec![format!("\"planner\": {}", json::quote(route))];
    if let QosBudget::Window(window) = request.budget() {
        fields.push(format!("\"qos_secs\": {window}"));
    } else if let QosBudget::Slack(slack) = request.budget() {
        fields.push(format!("\"slack\": {slack}"));
    }
    if request.solver() == Solver::SequenceDp {
        fields.push("\"solver\": \"sequence-dp\"".to_string());
    }
    if let Some(resolution) = request.dp_resolution() {
        fields.push(format!("\"dp_resolution\": {resolution}"));
    }
    format!("{{{}}}", fields.join(", "))
}

/// The service configuration every serving-mode pass shares — the serve
/// harness, the trace recording and the offline replay must canonicalize
/// requests identically (same QoS quantum) or replayed plan hashes could
/// not reproduce the recorded ones.
fn serving_config(workers: usize) -> ServiceConfig {
    ServiceConfig::default()
        .with_workers(workers)
        .with_batch_linger(Duration::from_millis(2))
        // Windows are a few milliseconds; a 1 µs quantum folds the
        // trace's sub-µs jitter onto shared entries without moving any
        // deadline by a meaningful amount.
        .with_qos_quantum_secs(1e-6)
}

/// Records one serve pass to a JSONL trace: a fresh service over a fresh
/// registry answers `trace` over loopback HTTP while the server streams
/// every receipted admission to `trace_path`. Returns the request count.
fn record_trace(
    planners: &[(String, Arc<Planner>)],
    trace: &[(String, String)],
    workers: usize,
    clients: usize,
    trace_path: &std::path::Path,
) -> usize {
    let registry_dir = std::env::temp_dir().join(format!("dae-dvfs-record-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&registry_dir);
    let mut service = PlanService::new(serving_config(workers)).expect("service config validates");
    let keys: Vec<_> = planners
        .iter()
        .map(|(_, planner)| service.register(planner.clone()))
        .collect();
    service
        .attach_registry(PlanRegistry::open(&registry_dir).expect("registry opens"))
        .expect("fresh registry validates");
    let replay = service.run(|svc| {
        let mut server = PlanServer::new(svc, ServerConfig::default().with_workers(clients))
            .expect("server config validates");
        for ((name, _), key) in planners.iter().zip(&keys) {
            server = server.route(name, *key).expect("route registers");
        }
        let server = server
            .trace_to(&trace_path.to_string_lossy())
            .expect("trace file opens");
        server
            .serve(|handle| httpc::replay_posts(handle.addr(), trace, clients))
            .expect("server binds an ephemeral loopback port")
            .expect("every recorded request answered")
    });
    let _ = std::fs::remove_dir_all(&registry_dir);
    assert!(
        replay.receipts.iter().all(Option::is_some),
        "recording requires a receipt on every response"
    );
    replay.bodies.len()
}

/// One recorded trace line: arrival order, request target and body, and
/// the plan hash the recording server's receipt vouched for.
struct TraceRecord {
    seq: u64,
    target: String,
    plan_hash: u64,
    body: String,
}

/// Parses a JSONL request trace (as written by `PlanServer::trace_to`)
/// into arrival order.
fn parse_trace(text: &str) -> Vec<TraceRecord> {
    let mut records: Vec<TraceRecord> = text
        .lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            let value = dae_dvfs::artifact::json::parse(line).expect("trace line parses");
            let record = value
                .as_object("trace record")
                .expect("trace record is an object");
            TraceRecord {
                seq: record.get_u64("seq").expect("seq field"),
                target: record.get_str("target").expect("target field").to_string(),
                plan_hash: record.get_hex64("plan_hash").expect("plan_hash field"),
                body: record.get_str("body").expect("body field").to_string(),
            }
        })
        .collect();
    records.sort_by_key(|r| r.seq);
    records
}

/// Drives a fresh service + fresh registry through a recorded trace in
/// arrival order (one keep-alive connection, strictly sequential) and
/// checks every response's plan hash — and its receipt's claimed hash —
/// against the recorded receipt. Returns `(requests, divergences)`.
fn replay_trace(
    planners: &[(String, Arc<Planner>)],
    workers: usize,
    trace_path: &std::path::Path,
) -> (usize, usize) {
    let text = std::fs::read_to_string(trace_path).expect("trace file reads");
    let records = parse_trace(&text);
    let registry_dir = std::env::temp_dir().join(format!("dae-dvfs-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&registry_dir);
    let mut service = PlanService::new(serving_config(workers)).expect("service config validates");
    let keys: Vec<_> = planners
        .iter()
        .map(|(_, planner)| service.register(planner.clone()))
        .collect();
    service
        .attach_registry(PlanRegistry::open(&registry_dir).expect("registry opens"))
        .expect("fresh registry validates");
    let answers: Vec<(u64, Option<String>)> = service.run(|svc| {
        let mut server =
            PlanServer::new(svc, ServerConfig::default()).expect("server config validates");
        for ((name, _), key) in planners.iter().zip(&keys) {
            server = server.route(name, *key).expect("route registers");
        }
        server
            .serve(|handle| -> std::io::Result<_> {
                let mut client = httpc::Client::connect(handle.addr())?;
                records
                    .iter()
                    .map(|record| {
                        let response = client.post(&record.target, &record.body)?;
                        assert_eq!(
                            response.status,
                            200,
                            "replayed request {} failed: {}",
                            record.seq,
                            response.body_str()
                        );
                        Ok((dae_dvfs::obs::plan_hash(&response.body), response.receipt))
                    })
                    .collect()
            })
            .expect("server binds an ephemeral loopback port")
            .expect("every replayed request answered")
    });
    let _ = std::fs::remove_dir_all(&registry_dir);
    let mut divergences = 0;
    for (record, (hash, receipt)) in records.iter().zip(&answers) {
        let receipt = receipt.as_deref().expect("replay responses carry receipts");
        assert_eq!(
            serving::receipt_hash(receipt),
            Some(*hash),
            "request {}: receipt hash must pin the replayed body bytes",
            record.seq
        );
        if *hash != record.plan_hash {
            eprintln!(
                "divergence at seq {}: recorded {:016x}, replayed {:016x}",
                record.seq, record.plan_hash, hash
            );
            divergences += 1;
        }
    }
    (records.len(), divergences)
}

/// The `--replay` path: re-drive a previously recorded JSONL trace
/// through a fresh service + registry and hold every plan hash to the
/// recorded receipts.
fn replay_mode(trace_path: &str, workers: usize) {
    println!("building planners (one DSE per model x target)...");
    let t0 = Instant::now();
    let planners = build_planners();
    println!(
        "  {} planners in {:.2}s",
        planners.len(),
        t0.elapsed().as_secs_f64()
    );
    let (requests, divergences) =
        replay_trace(&planners, workers, std::path::Path::new(trace_path));
    println!("replay: {requests} requests from {trace_path}, {divergences} divergences");
    assert_eq!(
        divergences, 0,
        "replayed plan hashes must match the recorded receipts"
    );
    println!("plan-hash equality: 100%");
}

/// The `--serve` path: the deterministic trace replayed over loopback
/// HTTP, cold against an empty registry and warm after a simulated
/// restart. The shared harness asserts the restart contract; this
/// function reports the latency split.
fn serve_mode(smoke: bool, requests: usize, workers: usize) {
    let clients = 8;
    println!("building planners (one DSE per model x target)...");
    let t0 = Instant::now();
    let planners = build_planners();
    println!(
        "  {} planners in {:.2}s",
        planners.len(),
        t0.elapsed().as_secs_f64()
    );

    let baselines: Vec<f64> = planners
        .iter()
        .map(|(_, planner)| planner.baseline_latency().expect("baseline runs"))
        .collect();
    let mut rng = SplitMix64::new(0xDAE_D5F5);
    let trace: Vec<(String, String)> = generate_trace(&baselines, requests, &mut rng)
        .iter()
        .map(|r| {
            (
                "/v1/plan".to_string(),
                request_body(&planners[r.tenant].0, &r.request),
            )
        })
        .collect();
    println!(
        "trace: {} requests over {} tenants, replayed twice over HTTP ({} client connections)",
        trace.len(),
        planners.len(),
        clients
    );

    let service_config = serving_config(workers);
    let server_config = ServerConfig::default().with_workers(clients);
    let registry_dir = std::env::temp_dir().join(format!("dae-dvfs-serve-{}", std::process::id()));
    let measured = serving::measure_serving(
        &planners,
        &service_config,
        &server_config,
        &trace,
        &registry_dir,
        clients,
    );
    let _ = std::fs::remove_dir_all(&registry_dir);

    println!("\ncold pass (empty registry: every distinct request solves)");
    println!(
        "  p50 / p99 latency    {:>9.3} / {:.3} ms",
        measured.cold.p50_ms, measured.cold.p99_ms
    );
    println!(
        "  distinct solves      {:>9}",
        measured.cold.stats.cache.inserted
    );
    println!(
        "  registry writes      {:>9}",
        measured.cold.stats.registry_writes
    );
    println!("  wall time            {:>9.3} s", measured.cold.total_secs);
    println!("\nwarm pass (restarted process: answered from disk, zero solves)");
    println!(
        "  p50 / p99 latency    {:>9.3} / {:.3} ms",
        measured.warm.p50_ms, measured.warm.p99_ms
    );
    println!("  solve batches        {:>9}", measured.warm.stats.batches);
    println!(
        "  registry hits        {:>9}",
        measured.warm.stats.registry_hits
    );
    println!("  wall time            {:>9.3} s", measured.warm.total_secs);
    println!("\nhot replay (same process: the inline serving fast path)");
    println!(
        "  p50 / p99 latency    {:>9.3} / {:.3} ms",
        measured.hot.p50_ms, measured.hot.p99_ms
    );
    println!(
        "  inline hits          {:>9}",
        measured.hot.stats.inline_hits - measured.warm.stats.inline_hits
    );
    println!(
        "  ticket enqueues      {:>9}",
        measured.hot.stats.enqueued - measured.warm.stats.enqueued
    );
    println!(
        "  bytes served         {:>9}",
        measured.hot.stats.bytes_served - measured.warm.stats.bytes_served
    );
    println!("  wall time            {:>9.3} s", measured.hot.total_secs);
    println!(
        "\nresponses byte-identical across the restart ({} HTTP requests total)",
        measured.http_requests
    );

    // The record → replay determinism gate: stream the same trace
    // through a trace-recording server, then drive a fresh service +
    // registry through the JSONL offline and demand per-request
    // plan-hash equality against the recorded receipts.
    let jsonl = std::env::temp_dir().join(format!("dae-dvfs-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&jsonl);
    let recorded = record_trace(&planners, &trace, workers, clients, &jsonl);
    let (replayed, divergences) = replay_trace(&planners, workers, &jsonl);
    let _ = std::fs::remove_file(&jsonl);
    assert_eq!(
        recorded, replayed,
        "the replay must answer every recorded request"
    );
    assert_eq!(
        divergences, 0,
        "replayed plan hashes must match the recorded receipts"
    );
    println!(
        "\nrecord -> replay: {replayed} requests re-driven offline, \
         100% plan-hash equality, 0 divergences"
    );
    if smoke {
        eprintln!(
            "smoke: serve invariants hold ({} http requests, receipt on every response; \
             hot replay: zero solves, zero enqueues, all hits inline; \
             record->replay: {replayed} requests, 0 divergences)",
            measured.http_requests
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let exact = args.iter().any(|a| a == "--exact");
    let serve = args.iter().any(|a| a == "--serve" || a == "--http-trace");
    let flag = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let requests = flag("--requests", if smoke { 150 } else { 1200 });
    let workers = flag("--workers", 4);
    let submitters = 4;
    if let Some(trace_path) = args
        .iter()
        .position(|a| a == "--replay")
        .and_then(|i| args.get(i + 1))
    {
        replay_mode(trace_path, workers);
        return;
    }
    if serve {
        serve_mode(smoke, requests, workers);
        return;
    }

    println!("building planners (one DSE per model x target)...");
    let t0 = Instant::now();
    let planners = build_planners();
    println!(
        "  {} planners in {:.2}s",
        planners.len(),
        t0.elapsed().as_secs_f64()
    );

    let mode = if exact {
        CoalesceMode::Exact
    } else {
        CoalesceMode::Swept
    };
    let mut service = PlanService::new(
        ServiceConfig::default()
            .with_workers(workers)
            .with_mode(mode)
            .with_batch_linger(Duration::from_millis(2))
            // Windows are a few milliseconds; a 1 µs quantum folds the
            // trace's sub-µs jitter onto shared entries without moving
            // any deadline by a meaningful amount.
            .with_qos_quantum_secs(1e-6),
    )
    .expect("service config validates");
    let tenants: Vec<Tenant> = planners
        .iter()
        .map(|(name, planner)| {
            let baseline = planner.baseline_latency().expect("baseline runs");
            Tenant {
                name: name.clone(),
                key: service.register(planner.clone()),
                baseline,
            }
        })
        .collect();

    let baselines: Vec<f64> = tenants.iter().map(|t| t.baseline).collect();
    let mut rng = SplitMix64::new(0xDAE_D5F5);
    let trace = generate_trace(&baselines, requests, &mut rng);
    println!(
        "trace: {} requests over {} tenants ({:?} coalescing, {} workers, {} submitters)",
        trace.len(),
        tenants.len(),
        mode,
        workers,
        submitters
    );

    // Serial reference: every request answered by a bare Planner::plan.
    let t1 = Instant::now();
    let serial: Vec<_> = trace
        .iter()
        .map(|r| {
            planners[r.tenant]
                .1
                .plan(&r.request)
                .expect("serial plan solves")
        })
        .collect();
    let serial_secs = t1.elapsed().as_secs_f64();

    // Served: the same trace through the service, submitters striping it.
    let t2 = Instant::now();
    let answers: Vec<_> = service.run(|svc| {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..submitters)
                .map(|offset| {
                    let trace = &trace;
                    let tenants = &tenants;
                    s.spawn(move || {
                        trace
                            .iter()
                            .enumerate()
                            .skip(offset)
                            .step_by(submitters)
                            .map(|(i, r)| {
                                let plan = svc
                                    .plan(tenants[r.tenant].key, &r.request)
                                    .expect("served plan solves");
                                (i, plan)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut answers = vec![None; trace.len()];
            for handle in handles {
                for (i, plan) in handle.join().expect("submitter panicked") {
                    answers[i] = Some(plan);
                }
            }
            answers
                .into_iter()
                .map(|a| a.expect("answered"))
                .collect::<Vec<_>>()
        })
    });
    let served_secs = t2.elapsed().as_secs_f64();

    // ---- invariants -----------------------------------------------------
    let stats = service.stats();
    assert_eq!(
        stats.submitted,
        trace.len() as u64,
        "every request admitted"
    );
    assert_eq!(stats.completed, stats.submitted, "every ticket fulfilled");
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        stats.submitted,
        "cache counters must account for every request: {stats:?}"
    );
    assert_eq!(stats.failed, 0, "trace requests are all feasible");
    for (i, (answer, reference)) in answers.iter().zip(&serial).enumerate() {
        // Feasibility for the *original* request (quantization only ever
        // tightens the window).
        assert!(
            answer.predicted_latency_secs <= reference.qos_secs + 1e-12,
            "request {i} overran its window"
        );
    }
    // Sampled bit-identical pins against the mode's serial reference.
    for i in (0..trace.len()).step_by((trace.len() / 25).max(1)) {
        let r = &trace[i];
        let planner = &planners[r.tenant].1;
        let quantized = {
            let window = answers[i].qos_secs;
            PlanRequest::qos(window)
                .with_solver(r.request.solver())
                .with_dp_resolution(
                    r.request
                        .dp_resolution()
                        .unwrap_or(planner.config().dp_resolution),
                )
        };
        let reference = match (mode, r.request.solver()) {
            (CoalesceMode::Swept, Solver::ReserveGrid) => planner
                .sweep([answers[i].qos_secs])
                .expect("singleton sweep solves")
                .remove(0),
            _ => planner.plan(&quantized).expect("reference solves"),
        };
        assert_eq!(
            *answers[i], reference,
            "request {i} diverged from its serial reference"
        );
    }

    // ---- report ---------------------------------------------------------
    println!("\nper-tenant baselines");
    for tenant in &tenants {
        println!("  {:<24} {:>8.3} ms", tenant.name, tenant.baseline * 1e3);
    }
    println!("\nresults");
    println!("  serial plan() loop   {:>9.3} s", serial_secs);
    println!(
        "  served (cache+coalesce) {:>6.3} s  ({:.1}x speedup)",
        served_secs,
        serial_secs / served_secs
    );
    println!(
        "  throughput           {:>9.0} req/s",
        stats.throughput_rps()
    );
    println!("  hit rate             {:>9.1} %", stats.hit_rate() * 100.0);
    println!("  single-flight joins  {:>9}", stats.cache.joined);
    println!("  distinct solves      {:>9}", stats.cache.inserted);
    println!(
        "  batches              {:>9} (mean {:.1}, max {})",
        stats.batches,
        stats.mean_batch(),
        stats.max_batch
    );
    println!("  peak queue depth     {:>9}", stats.max_queue_depth);
    if smoke {
        eprintln!("smoke: invariants hold ({} requests)", trace.len());
    }
}
