//! TAB-SW — Clock-switch overheads (paper Sec. II-A).
//!
//! Reproduces the measurement that re-locking the PLL costs ≈ 200 µs while
//! toggling the SYSCLK mux to the HSE (or back onto a warm PLL) is almost
//! instant — the asymmetry the LFO/HFO scheme exploits.
//!
//! Run with: `cargo run --release -p repro-bench --bin switching_overhead`

use mcu_sim::Machine;
use stm32_rcc::{ClockSource, Hertz, PllConfig, SysclkConfig};

fn pll(n: u32) -> SysclkConfig {
    SysclkConfig::Pll(
        PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, n, 2)
            .expect("ladder configurations are valid"),
    )
}

fn main() {
    let lfo = SysclkConfig::hse_direct(Hertz::mhz(50));
    let cases: Vec<(&str, SysclkConfig, SysclkConfig)> = vec![
        ("HFO(216) -> LFO(HSE 50)        [mux]", pll(216), lfo),
        ("LFO(HSE 50) -> warm HFO(216)   [mux]", lfo, pll(216)),
        ("HFO(216) -> HFO(150)        [re-lock]", pll(216), pll(150)),
        ("HFO(150) -> HFO(216)        [re-lock]", pll(150), pll(216)),
        (
            "HSE 50 -> HSI              [mux]",
            lfo,
            SysclkConfig::HsiDirect,
        ),
    ];

    println!("TAB-SW: SYSCLK switch overheads");
    println!(
        "{:>40} | {:>12} | {:>10}",
        "transition", "latency", "relocks"
    );
    repro_bench::rule(70);
    for (label, from, to) in cases {
        let mut machine = Machine::new(from);
        let dt = machine.switch_clock(to);
        println!(
            "{label:>40} | {:>9.2} µs | {:>10}",
            dt * 1e6,
            machine.relock_count()
        );
    }

    // The overlap trick: preparing the PLL in the background during an LFO
    // phase hides (part of) the re-lock.
    println!("\nBackground re-lock overlap (prepare_pll during an LFO segment):");
    for busy_us in [0.0, 50.0, 100.0, 200.0, 300.0] {
        let mut machine = Machine::new(pll(216));
        machine.switch_clock(lfo);
        machine.prepare_pll(PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 150, 2).unwrap());
        // Simulate an LFO phase of `busy_us` microseconds.
        machine.idle(busy_us * 1e-6, mcu_sim::IdleMode::BusyRun, "lfo-work");
        let stall = machine.switch_clock(pll(150));
        println!(
            "  LFO work {busy_us:>5.0} µs -> residual stall {:>6.2} µs",
            stall * 1e6
        );
    }
    println!("\n(paper: PLL re-lock ~200 µs, HSE switch almost instant)");
}
