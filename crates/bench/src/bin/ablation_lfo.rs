//! ABLATION — LFO frequency selection for the memory-bound segments.
//!
//! The paper fixes the LFO at 50 MHz (the HSE maximum). Lower direct-HSE
//! frequencies draw less power but stretch the staging segments; this
//! ablation sweeps the choice.
//!
//! Run with: `cargo run --release -p repro-bench --bin ablation_lfo`

use dae_dvfs::{DseConfig, Planner};
use stm32_rcc::Hertz;
use tinynn::models::vww;

fn main() {
    let model = vww();
    println!("ABLATION: LFO frequency choice (VWW, 30% slack)");
    println!(
        "{:>10} | {:>12} | {:>12} | {:>12}",
        "LFO", "inference", "window E", "mem share"
    );
    repro_bench::rule(56);

    for lfo_mhz in [16u64, 25, 40, 50] {
        let mut cfg = DseConfig::paper();
        cfg.modes = cfg.modes.with_lfo(Hertz::mhz(lfo_mhz));
        let report = Planner::new(&model, &cfg)
            .expect("planner builds")
            .run(0.30)
            .expect("pipeline runs");
        // Memory share: fraction of layers that kept DAE enabled.
        let dae_layers = report
            .plan
            .decisions
            .iter()
            .filter(|d| !d.point.granularity.is_baseline())
            .count();
        println!(
            "{:>7} MHz | {:>9.3} ms | {:>9.3} mJ | {:>3}/{} DAE",
            lfo_mhz,
            report.inference_secs * 1e3,
            report.total_energy.as_mj(),
            dae_layers,
            report.plan.decisions.len()
        );
    }
    println!("(the paper's 50 MHz LFO maximizes staging throughput; slower LFOs only");
    println!(" win when the freed power outweighs the longer memory segments)");
}
