//! BENCH-SUMMARY — machine-readable end-to-end timing of the planning
//! stack.
//!
//! For each paper model, times three ways of answering a 10-point QoS
//! sweep:
//!
//! 1. **historical per-call**: a fresh DSE per QoS point (`optimize()`
//!    called 10 times);
//! 2. **cached loop** (the PR 2 path): one [`Planner`], `optimize()` per
//!    point — the DSE is shared but every point re-runs its own DPs;
//! 3. **single-pass sweep**: [`Planner::sweep`] — one shared-grid DP
//!    table answers every point's whole reserve search by extraction.
//!
//! It also times the solver in isolation (per-call `solve_dp` per budget
//! vs one `solve_dp_sweep`) on the same per-layer fronts, the
//! **quantized DP kernels** (one shared-grid fill, the per-window
//! extractions, and an incremental re-solve after a single-class drift
//! vs the full refill it replaces), and the **plan-serving subsystem**
//! on the smallest model: cold `plan()` vs
//! cached hits vs one coalesced batch, plus hit rate and throughput on a
//! hot-key-skewed trace, plus the measured allocations per warm hit
//! (schema v7, via a counting global allocator). The `server` section
//! replays a trace over real loopback HTTP three times — cold against
//! an empty on-disk registry, warm after a simulated restart, then hot
//! inside the warm process — and records the latency percentiles, the
//! warm-vs-cold solve split, and the hot replay's inline-hit rate and
//! percentiles (schema v7). Schema v8 adds the observability numbers: a
//! second hot replay with receipts disabled gives the before/after cost
//! of stamping a receipt on every response (`warm_noreceipt_p50_ms`,
//! `receipt_overhead_frac`), and the service's fixed-bucket latency
//! histograms are summarized per serving path (`path_histograms`).
//! Emits a single JSON object (schema v8) on stdout, self-validates it
//! against the workspace JSON parser, and writes `BENCH_SUMMARY.json`
//! to the current directory so CI and the repo's benchmark trajectory
//! can track the numbers without scraping human-formatted tables.
//!
//! Run with: `cargo run --release -p repro-bench --bin bench_summary`
//! CI smoke: `… --bin bench_summary -- --smoke` (smallest model only,
//! no file written; exits non-zero if the emitted JSON fails validation).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dae_dvfs::{
    mckp_resweep, mckp_sweep, optimize, solve_dp, solve_dp_sweep, MckpItem, PlanRequest,
    PlanServer, PlanService, Planner, ServerConfig, ServiceConfig, SolverWorkspace,
    Stm32F767Target, Target,
};
use repro_bench::json::BENCH_SUMMARY_SCHEMA_VERSION;
use repro_bench::{config, httpc, json, serving};
use tinyengine::qos_window;
use tinynn::models::synth::SplitMix64;

/// Allocation counter behind [`CountingAlloc`]; read around the hit
/// loop to report `allocs_per_hit` (schema v7).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator: the only way to
/// *measure* (rather than assert by inspection) that the warm-hit path
/// is allocation-free. Counting is a single relaxed increment, far below
/// the noise floor of anything else this binary times.
struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Slack levels of the 10-point sweep (5% … 95% in 10% steps).
fn sweep_slacks() -> Vec<f64> {
    (0..10).map(|i| 0.05 + 0.10 * i as f64).collect()
}

struct ModelRow {
    name: String,
    layers: usize,
    construction_secs: f64,
    sweep_secs: f64,
    percall_loop_secs: f64,
    percall_total_secs: f64,
    solver_percall_secs: f64,
    solver_sweep_secs: f64,
    kernel_fill_secs: f64,
    kernel_extract_secs: f64,
    incremental_speedup: f64,
}

impl ModelRow {
    /// End-to-end speedup over the historical fresh-DSE-per-point path.
    fn speedup(&self) -> f64 {
        self.percall_total_secs / (self.construction_secs + self.sweep_secs)
    }

    /// Additional sweep speedup over the PR 2 cached per-point loop.
    fn sweep_speedup(&self) -> f64 {
        self.percall_loop_secs / self.sweep_secs
    }
}

fn measure(model: &tinynn::Model, smoke: bool) -> ModelRow {
    let cfg = config();

    // Cached paths: one planner shared by the loop and the sweep.
    let t0 = Instant::now();
    let planner = Planner::for_target(repro_bench::target(), model).expect("planner builds");
    let construction_secs = t0.elapsed().as_secs_f64();

    let baseline = planner.baseline_latency().expect("baseline runs");
    let windows: Vec<f64> = sweep_slacks()
        .into_iter()
        .map(|s| qos_window(baseline, s))
        .collect();

    // PR 2 cached path: per-point optimize against the shared caches.
    let t1 = Instant::now();
    let loop_plans: Vec<_> = windows
        .iter()
        .map(|&q| planner.optimize(q).expect("per-point optimize solves"))
        .collect();
    let percall_loop_secs = t1.elapsed().as_secs_f64();

    // Single-pass sweep: one shared-grid DP table for all ten points.
    let t2 = Instant::now();
    let sweep_plans = planner
        .sweep(windows.iter().copied())
        .expect("sweep solves");
    let sweep_secs = t2.elapsed().as_secs_f64();

    // The sweep answers every budget on a grid at least as fine as the
    // per-point loop; replay-validated winners may differ within the
    // solver's discretization bound, but never materially.
    let loop_energy: f64 = loop_plans.iter().map(|p| p.predicted_energy.as_f64()).sum();
    let sweep_energy: f64 = sweep_plans
        .iter()
        .map(|p| p.predicted_energy.as_f64())
        .sum();
    assert!(
        ((sweep_energy - loop_energy) / loop_energy).abs() < 0.01,
        "sweep and per-point energies must agree within the bound: {sweep_energy} vs {loop_energy}"
    );
    for (plan, &qos) in sweep_plans.iter().zip(&windows) {
        assert!(
            plan.predicted_latency_secs <= qos,
            "sweep plan overran its window"
        );
    }

    // Historical path: a fresh DSE per QoS point (skipped in smoke runs —
    // it dominates wall-clock and the smoke gate only checks the schema).
    let percall_total_secs = if smoke {
        construction_secs + sweep_secs
    } else {
        let t3 = Instant::now();
        for &qos in &windows {
            optimize(model, qos, &cfg).expect("per-call optimize solves");
        }
        t3.elapsed().as_secs_f64()
    };

    // Solver-only timings on the model's own fronts: per-call DP per
    // budget vs one shared table.
    let idle_power = cfg.power.clock_gated_power.as_f64();
    let classes: Vec<Vec<MckpItem>> = planner
        .fronts()
        .iter()
        .map(|front| {
            front
                .iter()
                .map(|pt| MckpItem {
                    time_secs: pt.latency_secs,
                    energy: pt.energy.as_f64() - idle_power * pt.latency_secs,
                })
                .collect()
        })
        .collect();
    let t4 = Instant::now();
    for &qos in &windows {
        solve_dp(&classes, qos, cfg.dp_resolution).expect("per-call DP solves");
    }
    let solver_percall_secs = t4.elapsed().as_secs_f64();
    let t5 = Instant::now();
    let swept = solve_dp_sweep(&classes, &windows, cfg.dp_resolution).expect("sweep DP solves");
    let solver_sweep_secs = t5.elapsed().as_secs_f64();
    assert!(
        swept.iter().all(|s| s.is_ok()),
        "all sweep budgets feasible"
    );

    // Quantized-kernel timings (schema v5): one shared-grid fill, the
    // per-window extractions, and an incremental re-solve after a
    // single-class drift vs the full refill it replaces.
    let mut ws = SolverWorkspace::new();
    let t6 = Instant::now();
    let table = mckp_sweep(&classes, &windows, cfg.dp_resolution, &mut ws).expect("kernel fill");
    let kernel_fill_secs = t6.elapsed().as_secs_f64();
    let t7 = Instant::now();
    for &qos in &windows {
        table.best_for(qos).expect("kernel extract");
    }
    let kernel_extract_secs = t7.elapsed().as_secs_f64();

    // Drift the middle class's first item back and forth so every
    // iteration presents exactly one changed class: the full path refills
    // the whole table, the incremental path only the suffix behind it.
    let mut drifted = classes.clone();
    let mid = drifted.len() / 2;
    let iters = if smoke { 3 } else { 20 };
    let mut ws_full = SolverWorkspace::new();
    let mut ws_inc = SolverWorkspace::new();
    mckp_sweep(&drifted, &windows, cfg.dp_resolution, &mut ws_full).expect("prime full");
    mckp_resweep(&drifted, &windows, cfg.dp_resolution, &mut ws_inc).expect("prime warm");
    let (mut full_secs, mut inc_secs) = (0.0, 0.0);
    for i in 0..iters {
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        drifted[mid][0].energy += sign * 0.37e-6;
        let t = Instant::now();
        mckp_sweep(&drifted, &windows, cfg.dp_resolution, &mut ws_full).expect("full refill");
        full_secs += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let warm =
            mckp_resweep(&drifted, &windows, cfg.dp_resolution, &mut ws_inc).expect("resweep");
        inc_secs += t.elapsed().as_secs_f64();
        assert!(
            warm.refilled_classes() <= drifted.len() - mid,
            "single-class drift must refill only the suffix"
        );
    }
    let incremental_speedup = full_secs / inc_secs;

    ModelRow {
        name: model.name.clone(),
        layers: model.layer_count(),
        construction_secs,
        sweep_secs,
        percall_loop_secs,
        percall_total_secs,
        solver_percall_secs,
        solver_sweep_secs,
        kernel_fill_secs,
        kernel_extract_secs,
        incremental_speedup,
    }
}

/// Plan-service measurements on one model (schema v4's `service`
/// section).
struct ServiceRow {
    model: String,
    qos_points: usize,
    /// Mean cold `Planner::plan` latency per request.
    cold_plan_secs: f64,
    /// Mean warm-cache hit latency per request.
    cache_hit_secs: f64,
    /// Wall time of the distinct-window batch through per-request
    /// `plan()` calls.
    percall_batch_secs: f64,
    /// Wall time of the same batch submitted concurrently to the
    /// service (shared-grid coalescing).
    coalesced_batch_secs: f64,
    trace_requests: usize,
    hit_rate: f64,
    throughput_rps: f64,
    /// Heap allocations per warm-cache hit, measured by the counting
    /// global allocator around the hit loop (schema v7). The inline hot
    /// path is designed to allocate nothing; this keeps it honest.
    allocs_per_hit: f64,
}

impl ServiceRow {
    fn cache_hit_speedup(&self) -> f64 {
        self.cold_plan_secs / self.cache_hit_secs
    }

    fn coalescing_speedup(&self) -> f64 {
        self.percall_batch_secs / self.coalesced_batch_secs
    }
}

fn measure_service(model: &tinynn::Model) -> ServiceRow {
    let planner =
        Arc::new(Planner::for_target(repro_bench::target(), model).expect("planner builds"));
    let baseline = planner.baseline_latency().expect("baseline runs");
    let windows: Vec<f64> = (0..12)
        .map(|i| qos_window(baseline, 0.06 + 0.08 * i as f64))
        .collect();

    // Cold serial reference: one independent plan() per window.
    let t0 = Instant::now();
    for &w in &windows {
        planner
            .plan(&PlanRequest::qos(w))
            .expect("cold plan solves");
    }
    let percall_batch_secs = t0.elapsed().as_secs_f64();
    let cold_plan_secs = percall_batch_secs / windows.len() as f64;

    // The same batch as one concurrent burst through the service, then
    // warm-cache hits against it.
    let service_config = ServiceConfig::default()
        .with_workers(4)
        .with_batch_linger(Duration::from_micros(500));
    let mut service = PlanService::new(service_config.clone()).expect("config validates");
    let key = service.register(planner.clone());
    let (coalesced_batch_secs, cache_hit_secs, allocs_per_hit) = service.run(|svc| {
        let t1 = Instant::now();
        let tickets: Vec<_> = windows
            .iter()
            .map(|&w| svc.submit(key, &PlanRequest::qos(w)).expect("admitted"))
            .collect();
        for ticket in tickets {
            ticket.wait().expect("coalesced batch solves");
        }
        let coalesced = t1.elapsed().as_secs_f64();
        let hot = PlanRequest::qos(windows[0]);
        let hits = 2000;
        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        let t2 = Instant::now();
        for _ in 0..hits {
            svc.plan(key, &hot).expect("cache hit");
        }
        let hit_secs = t2.elapsed().as_secs_f64() / hits as f64;
        let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
        (coalesced, hit_secs, allocs as f64 / hits as f64)
    });

    // Hot-key-skewed trace on a fresh service: 70% of requests replay 3
    // hot windows, the tail spreads over the full window set.
    let mut trace_service = PlanService::new(service_config).expect("config validates");
    let key = trace_service.register(planner.clone());
    let mut rng = SplitMix64::new(0xBE5C);
    let trace_requests = 400;
    let trace: Vec<f64> = (0..trace_requests)
        .map(|_| {
            if rng.next_u64() % 100 < 70 {
                windows[(rng.next_u64() % 3) as usize]
            } else {
                windows[(rng.next_u64() % windows.len() as u64) as usize]
            }
        })
        .collect();
    let t3 = Instant::now();
    trace_service.run(|svc| {
        std::thread::scope(|s| {
            for offset in 0..4 {
                let trace = &trace;
                s.spawn(move || {
                    for &w in trace.iter().skip(offset).step_by(4) {
                        svc.plan(key, &PlanRequest::qos(w)).expect("trace solves");
                    }
                });
            }
        });
    });
    let trace_secs = t3.elapsed().as_secs_f64();
    let stats = trace_service.stats();
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        trace_requests as u64,
        "service cache counters must account for every trace request"
    );

    ServiceRow {
        model: model.name.clone(),
        qos_points: windows.len(),
        cold_plan_secs,
        cache_hit_secs,
        percall_batch_secs,
        coalesced_batch_secs,
        trace_requests,
        hit_rate: stats.hit_rate(),
        throughput_rps: trace_requests as f64 / trace_secs,
        allocs_per_hit,
    }
}

/// HTTP-serving measurements on one model (the `server` section): the
/// deterministic trace replayed over loopback sockets, cold against a
/// wiped registry, warm after a simulated restart, and hot inside the
/// warm process. The shared harness asserts the restart and hot-path
/// contracts (zero warm solves, zero hot enqueues, byte-identical
/// responses); this row records what CI tracks.
struct ServerRow {
    http_requests: u64,
    cold_solves: u64,
    warm_solves: u64,
    warm_registry_hits: u64,
    http_p50_ms: f64,
    http_p99_ms: f64,
    /// Hot-replay median latency (schema v7): every request an inline
    /// in-memory hit — the serving hot path's end-to-end number.
    warm_p50_ms: f64,
    /// Hot-replay 99th percentile (schema v7).
    warm_p99_ms: f64,
    /// Fraction of hot-replay requests answered on the lock-free inline
    /// fast path (schema v7); the harness asserts it is exactly 1.
    inline_hit_rate: f64,
    /// Hot-replay median with receipts disabled (schema v8): the before
    /// number of the receipt-overhead comparison.
    warm_noreceipt_p50_ms: f64,
    /// Fractional hot-path p50 cost of stamping a receipt on every
    /// response (schema v8): `warm_p50_ms / warm_noreceipt_p50_ms - 1`.
    receipt_overhead_frac: f64,
    /// Per-path latency summaries off the service's fixed-bucket
    /// histograms (schema v8): `(label, count, p50_us, p99_us)` for
    /// every populated serving path.
    path_histograms: Vec<(&'static str, u64, f64, f64)>,
}

fn measure_server(model: &tinynn::Model) -> ServerRow {
    let target = repro_bench::target();
    let route = format!("{}@{}", model.name, target.id());
    let planner = Arc::new(Planner::for_target(target, model).expect("planner builds"));
    let baseline = planner.baseline_latency().expect("baseline runs");
    let planners = vec![(route.clone(), planner)];

    // 8 hot request shapes replayed round-robin: enough distinct keys to
    // exercise the registry, enough repeats to exercise the LRU.
    let requests = 96;
    let trace: Vec<(String, String)> = (0..requests)
        .map(|i| {
            let body = if i % 2 == 0 {
                let slack = 0.1 + 0.2 * ((i / 2) % 4) as f64;
                format!(
                    "{{\"planner\": {}, \"slack\": {slack}}}",
                    json::quote(&route)
                )
            } else {
                let window = tinyengine::qos_window(baseline, 0.15 + 0.2 * ((i / 2) % 4) as f64);
                format!(
                    "{{\"planner\": {}, \"qos_secs\": {window}}}",
                    json::quote(&route)
                )
            };
            ("/v1/plan".to_string(), body)
        })
        .collect();

    let service_config = ServiceConfig::default()
        .with_workers(4)
        .with_batch_linger(Duration::from_millis(1))
        .with_qos_quantum_secs(1e-6);
    let registry_dir = std::env::temp_dir().join(format!("dae-dvfs-bench-{}", std::process::id()));
    let measured = serving::measure_serving(
        &planners,
        &service_config,
        &ServerConfig::default(),
        &trace,
        &registry_dir,
        4,
    );
    let _ = std::fs::remove_dir_all(&registry_dir);

    // The before/after cost of stamping a receipt (fingerprint, path,
    // plan hash, timings) on every response, measured paired so ambient
    // drift cannot masquerade as overhead.
    let (warm_noreceipt_p50_ms, receipt_p50_ms) =
        measure_receipt_overhead(&planners, &service_config, &trace, 4);

    // Per-path latency summaries off the receipted measurement's final
    // stats (the warm pass plus its hot replay, all receipted paths).
    let path_histograms: Vec<(&'static str, u64, f64, f64)> = measured
        .hot
        .stats
        .paths
        .iter()
        .filter(|(_, snapshot)| snapshot.count() > 0)
        .map(|(label, snapshot)| {
            (
                label,
                snapshot.count(),
                snapshot.percentile_upper_nanos(0.5) as f64 / 1e3,
                snapshot.percentile_upper_nanos(0.99) as f64 / 1e3,
            )
        })
        .collect();

    let hot_submitted = measured.hot.stats.submitted - measured.warm.stats.submitted;
    let hot_inline = measured.hot.stats.inline_hits - measured.warm.stats.inline_hits;
    ServerRow {
        http_requests: measured.http_requests,
        cold_solves: measured.cold.stats.cache.inserted,
        warm_solves: measured.warm.stats.batches,
        warm_registry_hits: measured.warm.stats.registry_hits,
        http_p50_ms: measured.warm.p50_ms,
        http_p99_ms: measured.warm.p99_ms,
        warm_p50_ms: measured.hot.p50_ms,
        warm_p99_ms: measured.hot.p99_ms,
        inline_hit_rate: hot_inline as f64 / hot_submitted as f64,
        warm_noreceipt_p50_ms,
        receipt_overhead_frac: receipt_p50_ms / warm_noreceipt_p50_ms - 1.0,
        path_histograms,
    }
}

/// Paired receipt-overhead measurement: one warm service, two loopback
/// servers over it — receipts off and receipts on — replaying the same
/// hot trace in alternating rounds so ambient drift hits both sides
/// equally. Every request is an inline LRU hit, so the medians compare
/// exactly the receipt work: the timing reads, the histogram record,
/// the ring/trace bookkeeping and the extra response header. The replay
/// runs a *single* keep-alive client — sequential requests have no
/// queueing jitter — and each side reports the *median of its per-round
/// medians*, so a stray slow round cannot masquerade as (or hide)
/// receipt overhead. Returns the two hot p50s `(off_ms, on_ms)`.
fn measure_receipt_overhead(
    planners: &[(String, Arc<Planner>)],
    service_config: &ServiceConfig,
    trace: &[(String, String)],
    clients: usize,
) -> (f64, f64) {
    let mut service = PlanService::new(service_config.clone()).expect("config validates");
    let keys: Vec<_> = planners
        .iter()
        .map(|(_, planner)| service.register(planner.clone()))
        .collect();
    service.run(|svc| {
        let mut off = PlanServer::new(
            svc,
            ServerConfig::default()
                .with_workers(clients)
                .with_receipts(false),
        )
        .expect("server config validates");
        let mut on = PlanServer::new(svc, ServerConfig::default().with_workers(clients))
            .expect("server config validates");
        for ((name, _), key) in planners.iter().zip(&keys) {
            off = off.route(name, *key).expect("route registers");
            on = on.route(name, *key).expect("route registers");
        }
        off.serve(|handle_off| {
            on.serve(|handle_on| -> std::io::Result<(f64, f64)> {
                // Warm the LRU (and both servers' connection paths).
                httpc::replay_posts(handle_on.addr(), trace, 1)?;
                httpc::replay_posts(handle_off.addr(), trace, 1)?;
                let (mut p50s_off, mut p50s_on) = (Vec::new(), Vec::new());
                for _ in 0..16 {
                    let round = httpc::replay_posts(handle_off.addr(), trace, 1)?;
                    p50s_off.push(round.percentile_ms(0.5));
                    let round = httpc::replay_posts(handle_on.addr(), trace, 1)?;
                    p50s_on.push(round.percentile_ms(0.5));
                }
                let median = |mut p50s: Vec<f64>| {
                    p50s.sort_by(f64::total_cmp);
                    p50s[p50s.len() / 2]
                };
                Ok((median(p50s_off), median(p50s_on)))
            })
            .expect("inner server binds an ephemeral loopback port")
        })
        .expect("outer server binds an ephemeral loopback port")
        .expect("every overhead-replay request answered")
    })
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values.fold((0.0, 0usize), |(s, n), v| (s + v.ln(), n + 1));
    (sum / n as f64).exp()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut models = repro_bench::models();
    if smoke {
        // Smallest model only: the smoke gate checks schema and wiring,
        // not the headline numbers.
        models.sort_by_key(tinynn::Model::layer_count);
        models.truncate(1);
    }

    let rows: Vec<ModelRow> = models.iter().map(|m| measure(m, smoke)).collect();

    // Plan-service measurements on the smallest model (cheap enough for
    // the smoke gate, representative for the headline ratios).
    let smallest = models
        .iter()
        .min_by_key(|m| m.layer_count())
        .expect("at least one model");
    let service_row = measure_service(smallest);
    let server_row = measure_server(smallest);

    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            json::Object::new()
                .str_field("model", &r.name)
                .u64_field("layers", r.layers as u64)
                .f64_field("planner_construction_secs", r.construction_secs, 6)
                .f64_field("planner_sweep_secs", r.sweep_secs, 6)
                .f64_field("percall_loop_secs", r.percall_loop_secs, 6)
                .f64_field("percall_total_secs", r.percall_total_secs, 6)
                .f64_field("solver_percall_secs", r.solver_percall_secs, 6)
                .f64_field("solver_sweep_secs", r.solver_sweep_secs, 6)
                .f64_field("kernel_fill_secs", r.kernel_fill_secs, 6)
                .f64_field("kernel_extract_secs", r.kernel_extract_secs, 6)
                .f64_field("incremental_speedup", r.incremental_speedup, 2)
                .f64_field("speedup", r.speedup(), 2)
                .f64_field("sweep_speedup", r.sweep_speedup(), 2)
                .render()
        })
        .collect();
    let service_json = json::Object::new()
        .str_field("model", &service_row.model)
        .u64_field("qos_points", service_row.qos_points as u64)
        .f64_field("cold_plan_secs", service_row.cold_plan_secs, 6)
        .f64_field("cache_hit_secs", service_row.cache_hit_secs, 9)
        .f64_field("cache_hit_speedup", service_row.cache_hit_speedup(), 1)
        .f64_field("percall_batch_secs", service_row.percall_batch_secs, 6)
        .f64_field("coalesced_batch_secs", service_row.coalesced_batch_secs, 6)
        .f64_field("coalescing_speedup", service_row.coalescing_speedup(), 2)
        .u64_field("trace_requests", service_row.trace_requests as u64)
        .f64_field("hit_rate", service_row.hit_rate, 4)
        .f64_field("throughput_rps", service_row.throughput_rps, 1)
        .f64_field("allocs_per_hit", service_row.allocs_per_hit, 3)
        .render();
    let histogram_rows: Vec<String> = server_row
        .path_histograms
        .iter()
        .map(|(label, count, p50_us, p99_us)| {
            json::Object::new()
                .str_field("path", label)
                .u64_field("count", *count)
                .f64_field("p50_us", *p50_us, 3)
                .f64_field("p99_us", *p99_us, 3)
                .render()
        })
        .collect();
    let server_json = json::Object::new()
        .u64_field("http_requests", server_row.http_requests)
        .u64_field("cold_solves", server_row.cold_solves)
        .u64_field("warm_solves", server_row.warm_solves)
        .u64_field("warm_registry_hits", server_row.warm_registry_hits)
        .f64_field("http_p50_ms", server_row.http_p50_ms, 3)
        .f64_field("http_p99_ms", server_row.http_p99_ms, 3)
        .f64_field("warm_p50_ms", server_row.warm_p50_ms, 3)
        .f64_field("warm_p99_ms", server_row.warm_p99_ms, 3)
        .f64_field("inline_hit_rate", server_row.inline_hit_rate, 4)
        .f64_field("warm_noreceipt_p50_ms", server_row.warm_noreceipt_p50_ms, 3)
        .f64_field("receipt_overhead_frac", server_row.receipt_overhead_frac, 4)
        .array_field("path_histograms", &histogram_rows)
        .render();
    let mut document = json::Object::new()
        .str_field("benchmark", "planner_sweep10")
        .u64_field("schema_version", BENCH_SUMMARY_SCHEMA_VERSION)
        .str_field("target", Stm32F767Target::paper().id())
        .u64_field("qos_points", 10)
        .array_field("models", &rendered)
        .raw_field("service", service_json)
        .raw_field("server", server_json)
        .f64_field(
            "speedup_geomean",
            geomean(rows.iter().map(ModelRow::speedup)),
            2,
        )
        .f64_field(
            "sweep_speedup_geomean",
            geomean(rows.iter().map(ModelRow::sweep_speedup)),
            2,
        )
        .render_pretty();

    println!("{document}");
    document.push('\n');

    if let Err(reason) = json::validate_summary(&document, BENCH_SUMMARY_SCHEMA_VERSION) {
        eprintln!("error: emitted summary failed validation: {reason}");
        std::process::exit(1);
    }

    if smoke {
        eprintln!(
            "smoke: summary validated (schema v{BENCH_SUMMARY_SCHEMA_VERSION}); no file written"
        );
        return;
    }
    if let Err(e) = std::fs::write("BENCH_SUMMARY.json", &document) {
        eprintln!("warning: could not write BENCH_SUMMARY.json: {e}");
    }
}
