//! BENCH-SUMMARY — machine-readable end-to-end timing of the planning
//! stack.
//!
//! Times one [`Planner`] construction plus a 10-point QoS sweep for each
//! paper model, and contrasts it with the historical per-call path (a
//! fresh DSE per QoS point, i.e. `optimize()` called 10 times). Emits a
//! single JSON object on stdout and writes it to `BENCH_SUMMARY.json` in
//! the current directory, so CI and the repo's benchmark trajectory can
//! track the numbers without scraping human-formatted tables.
//!
//! Run with: `cargo run --release -p repro-bench --bin bench_summary`

use std::time::Instant;

use dae_dvfs::{optimize, Planner, Stm32F767Target, Target};
use repro_bench::{config, json};
use tinyengine::qos_window;

/// Schema version of the `BENCH_SUMMARY.json` document.
const BENCH_SUMMARY_SCHEMA_VERSION: u64 = 2;

/// Slack levels of the 10-point sweep (5% … 95% in 10% steps).
fn sweep_slacks() -> Vec<f64> {
    (0..10).map(|i| 0.05 + 0.10 * i as f64).collect()
}

fn main() {
    let cfg = config();
    let mut entries = Vec::new();

    for model in repro_bench::models() {
        // Cached path: one planner, ten QoS points.
        let t0 = Instant::now();
        let planner = Planner::for_target(repro_bench::target(), &model).expect("planner builds");
        let construction_secs = t0.elapsed().as_secs_f64();

        let baseline = planner.baseline_latency().expect("baseline runs");
        let windows: Vec<f64> = sweep_slacks()
            .into_iter()
            .map(|s| qos_window(baseline, s))
            .collect();

        let t1 = Instant::now();
        let plans = planner
            .sweep(windows.iter().copied())
            .expect("sweep solves");
        let sweep_secs = t1.elapsed().as_secs_f64();

        // Historical path: a fresh DSE per QoS point.
        let t2 = Instant::now();
        let mut percall_energy = 0.0;
        for &qos in &windows {
            percall_energy += optimize(&model, qos, &cfg)
                .expect("per-call optimize solves")
                .predicted_energy
                .as_f64();
        }
        let percall_secs = t2.elapsed().as_secs_f64();

        let cached_energy: f64 = plans.iter().map(|p| p.predicted_energy.as_f64()).sum();
        assert!(
            (cached_energy - percall_energy).abs() < 1e-12,
            "cached and per-call sweeps must agree: {cached_energy} vs {percall_energy}"
        );

        let cached_total = construction_secs + sweep_secs;
        entries.push((
            model.name.clone(),
            model.layer_count(),
            construction_secs,
            sweep_secs,
            cached_total,
            percall_secs,
            percall_secs / cached_total,
        ));
    }

    let rows: Vec<String> = entries
        .iter()
        .map(
            |(name, layers, construction, sweep, cached, percall, speedup)| {
                json::Object::new()
                    .str_field("model", name)
                    .u64_field("layers", *layers as u64)
                    .f64_field("planner_construction_secs", *construction, 6)
                    .f64_field("planner_sweep_secs", *sweep, 6)
                    .f64_field("cached_total_secs", *cached, 6)
                    .f64_field("percall_total_secs", *percall, 6)
                    .f64_field("speedup", *speedup, 2)
                    .render()
            },
        )
        .collect();
    let geomean: f64 = (entries.iter().map(|e| e.6.ln()).sum::<f64>() / entries.len() as f64).exp();
    let mut document = json::Object::new()
        .str_field("benchmark", "planner_sweep10")
        .u64_field("schema_version", BENCH_SUMMARY_SCHEMA_VERSION)
        .str_field("target", Stm32F767Target::paper().id())
        .u64_field("qos_points", 10)
        .array_field("models", &rows)
        .f64_field("speedup_geomean", geomean, 2)
        .render_pretty();

    println!("{document}");
    document.push('\n');
    if let Err(e) = std::fs::write("BENCH_SUMMARY.json", &document) {
        eprintln!("warning: could not write BENCH_SUMMARY.json: {e}");
    }
}
