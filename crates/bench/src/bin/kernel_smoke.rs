//! KERNEL-SMOKE — CI gate for the quantized DP kernels and incremental
//! re-solve.
//!
//! Deterministic and fast: builds synthetic MCKP and sequence instances,
//! fills them cold, drifts a single class/layer, and asserts that the
//! incremental re-solve (a) refills only the suffix behind the drift —
//! strictly less than a full fill — and (b) answers every budget
//! bit-identically to a cold scratch fill. Exits non-zero on any
//! violation, so CI catches a kernel regression without waiting for the
//! full bench run.
//!
//! Run with: `cargo run --release -p repro-bench --bin kernel_smoke`

use dae_dvfs::{
    mckp_resweep, mckp_sweep, sequence_resweep, sequence_sweep, DseConfig, DsePoint, Granularity,
    MckpItem, OperatingModes, SolverWorkspace,
};
use stm32_power::Joules;
use stm32_rcc::Hertz;

fn fail(msg: String) -> ! {
    eprintln!("kernel_smoke: FAIL: {msg}");
    std::process::exit(1);
}

/// Deterministic synthetic MCKP instance shaped like per-layer Pareto
/// fronts (same family as the solver bench).
fn instance(layers: usize, points: usize) -> Vec<Vec<MckpItem>> {
    (0..layers)
        .map(|k| {
            (1..=points)
                .map(|i| MckpItem {
                    time_secs: 1e-3 * (points + 1 - i) as f64 * (1.0 + k as f64 * 0.07),
                    energy: 1e-4 * i as f64 * (1.0 + k as f64 * 0.05),
                })
                .collect()
        })
        .collect()
}

fn budgets_for(classes: &[Vec<MckpItem>]) -> Vec<f64> {
    let min_time: f64 = classes
        .iter()
        .map(|c| c.iter().map(|i| i.time_secs).fold(f64::INFINITY, f64::min))
        .sum();
    (0..10)
        .map(|i| min_time * (1.05 + 0.10 * i as f64))
        .collect()
}

fn check_mckp() {
    let classes = instance(24, 8);
    let budgets = budgets_for(&classes);
    let resolution = 2000;
    let drift_class = 12;

    let mut ws = SolverWorkspace::new();
    mckp_sweep(&classes, &budgets, resolution, &mut ws).expect("base fill solves");

    let mut drifted = classes.clone();
    drifted[drift_class][0].energy += 0.41e-6;

    let mut scratch = SolverWorkspace::new();
    let warm = mckp_resweep(&drifted, &budgets, resolution, &mut ws).expect("resweep solves");
    let cold = mckp_sweep(&drifted, &budgets, resolution, &mut scratch).expect("cold fill solves");

    let bound = drifted.len() - drift_class;
    if warm.refilled_classes() > bound {
        fail(format!(
            "mckp: single-class drift at {} refilled {} of {} classes (bound {})",
            drift_class,
            warm.refilled_classes(),
            drifted.len(),
            bound
        ));
    }
    for &budget in &budgets {
        let inc = warm.best_for(budget).expect("feasible by construction");
        let full = cold.best_for(budget).expect("feasible by construction");
        if inc.choices != full.choices
            || inc.total_time_secs.to_bits() != full.total_time_secs.to_bits()
            || inc.total_energy.to_bits() != full.total_energy.to_bits()
        {
            fail(format!(
                "mckp: resweep diverged from full refill at budget {budget}: {inc:?} vs {full:?}"
            ));
        }
    }
    println!(
        "kernel_smoke: mckp ok ({} budgets bit-identical, refilled {}/{} classes)",
        budgets.len(),
        warm.refilled_classes(),
        drifted.len()
    );
}

fn check_sequence() {
    let config = DseConfig::paper();
    let modes = OperatingModes::fig4();
    let mhz = [100u64, 168, 216];
    let nlayers = 12;
    let drift_layer = 6;

    let fronts: Vec<Vec<DsePoint>> = (0..nlayers)
        .map(|k| {
            (0..3usize)
                .map(|i| DsePoint {
                    granularity: Granularity(8),
                    hfo: *modes.hfo_at(Hertz::mhz(mhz[i])).expect("ladder frequency"),
                    latency_secs: 1e-3 * (3 - i) as f64 * (1.0 + k as f64 * 0.05),
                    energy: Joules::new(1e-4 * (i + 1) as f64 * (1.0 + k as f64 * 0.03)),
                    switches: 0,
                    first_stage_secs: 1e-4,
                })
                .collect()
        })
        .collect();
    let min_time: f64 = fronts
        .iter()
        .map(|f| {
            f.iter()
                .map(|p| p.latency_secs)
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    let budgets: Vec<f64> = (0..8)
        .map(|i| min_time * (1.5 + 0.15 * i as f64) + nlayers as f64 * 250e-6)
        .collect();
    let resolution = 2000;

    let mut ws = SolverWorkspace::new();
    sequence_sweep(&fronts, &budgets, resolution, &config, 0.0, &mut ws).expect("base fill solves");

    let mut drifted = fronts.clone();
    let e = drifted[drift_layer][0].energy.as_f64();
    drifted[drift_layer][0].energy = Joules::new(e + 0.53e-6);

    let mut scratch = SolverWorkspace::new();
    let warm = sequence_resweep(&drifted, &budgets, resolution, &config, 0.0, &mut ws)
        .expect("resweep solves");
    let cold = sequence_sweep(&drifted, &budgets, resolution, &config, 0.0, &mut scratch)
        .expect("cold fill solves");

    let bound = nlayers - drift_layer;
    if warm.refilled_layers() > bound {
        fail(format!(
            "seq: single-layer drift at {} refilled {} of {} layers (bound {})",
            drift_layer,
            warm.refilled_layers(),
            nlayers,
            bound
        ));
    }
    for &budget in &budgets {
        let inc = warm.best_for(budget).expect("feasible by construction");
        let full = cold.best_for(budget).expect("feasible by construction");
        if inc.choices != full.choices
            || inc.total_time_secs.to_bits() != full.total_time_secs.to_bits()
            || inc.total_energy.to_bits() != full.total_energy.to_bits()
            || inc.frequency_changes != full.frequency_changes
        {
            fail(format!(
                "seq: resweep diverged from full refill at budget {budget}: {inc:?} vs {full:?}"
            ));
        }
    }
    println!(
        "kernel_smoke: sequence ok ({} budgets bit-identical, refilled {}/{} layers)",
        budgets.len(),
        warm.refilled_layers(),
        nlayers
    );
}

fn main() {
    check_mckp();
    check_sequence();
    println!("kernel_smoke: PASS");
}
