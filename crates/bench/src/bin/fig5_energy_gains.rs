//! FIG5 — Energy gains over TinyEngine for VWW / PD / MBV2 at QoS 10/30/50 %.
//!
//! Reproduces Fig. 5 of the paper: iso-latency window energy of DAE+DVFS
//! vs plain TinyEngine (idle at 216 MHz) and TinyEngine with clock gating.
//!
//! Run with: `cargo run --release -p repro-bench --bin fig5_energy_gains`

use dae_dvfs::Planner;
use repro_bench::{models, SLACKS};

fn main() {
    println!("FIG5: iso-latency energy gains of DAE+DVFS");
    println!(
        "{:>18} | {:>5} | {:>10} | {:>10} | {:>10} | {:>9} | {:>9}",
        "model", "QoS", "ours (mJ)", "TE (mJ)", "TE+CG (mJ)", "vs TE", "vs TE+CG"
    );
    repro_bench::rule(92);

    let mut max_te: f64 = 0.0;
    let mut max_cg: f64 = 0.0;
    for model in models() {
        // One planner per model: the DSE sweep is shared by all three
        // slack levels, and the per-slack comparisons run striped over
        // the available cores.
        let planner = Planner::for_target(repro_bench::target(), &model).expect("planner builds");
        let comparisons = planner
            .compare_sweep(&SLACKS)
            .expect("comparison runs for every model/slack");
        for (slack, cmp) in SLACKS.iter().copied().zip(comparisons) {
            max_te = max_te.max(cmp.gain_vs_tinyengine_pct());
            max_cg = max_cg.max(cmp.gain_vs_gated_pct());
            println!(
                "{:>18} | {:>4.0}% | {:>10.3} | {:>10.3} | {:>10.3} | {:>8.1}% | {:>8.1}%",
                cmp.model,
                slack * 100.0,
                cmp.ours.as_mj(),
                cmp.tinyengine.as_mj(),
                cmp.tinyengine_gated.as_mj(),
                cmp.gain_vs_tinyengine_pct(),
                cmp.gain_vs_gated_pct()
            );
        }
        repro_bench::rule(92);
    }
    println!("max gain vs TinyEngine:            {max_te:.1}% (paper: up to 25.2%)");
    println!("max gain vs TinyEngine+ClockGating: {max_cg:.1}% (paper: up to 7.2%)");
}
