//! ABLATION — MCKP-DP vs greedy heuristic vs uniform-frequency selection.
//!
//! Quantifies what the dynamic program buys over (a) the greedy
//! energy-per-time heuristic and (b) the naive policy of running the whole
//! model at a single frequency chosen to meet the QoS.
//!
//! Run with: `cargo run --release -p repro-bench --bin ablation_solver`

use dae_dvfs::{solve_dp_sweep, solve_greedy, Granularity, MckpItem, Planner};
use repro_bench::{config, models, SLACKS};
use tinyengine::qos_window;

fn main() {
    let cfg = config();
    println!("ABLATION: solver quality (inference energy, mJ — lower is better)");
    println!(
        "{:>18} | {:>5} | {:>9} | {:>9} | {:>9} | {:>12}",
        "model", "QoS", "seq-DP", "DP", "greedy", "uniform-freq"
    );
    repro_bench::rule(78);

    for model in models() {
        // One planner per model: fronts, compiled schedules and the
        // baseline lowering feed every solver under comparison.
        let planner = Planner::new(&model, &cfg).expect("planner builds");
        let baseline = planner.baseline_latency().expect("baseline");
        let classes: Vec<Vec<MckpItem>> = planner
            .fronts()
            .iter()
            .map(|f| {
                f.iter()
                    .map(|pt| MckpItem {
                        time_secs: pt.latency_secs,
                        energy: pt.energy.as_f64(),
                    })
                    .collect()
            })
            .collect();

        // One shared-grid DP table answers all three QoS levels.
        let windows: Vec<f64> = SLACKS.iter().map(|&s| qos_window(baseline, s)).collect();
        let dp_solutions =
            solve_dp_sweep(&classes, &windows, cfg.dp_resolution).expect("dp sweep solves");

        for ((slack, &qos), dp) in SLACKS.iter().copied().zip(&windows).zip(dp_solutions) {
            let dp = dp.expect("dp budget feasible");
            let greedy = solve_greedy(&classes, qos).expect("greedy solves");

            // Uniform frequency: per HFO candidate, take every layer's
            // best-energy point at that frequency; keep the cheapest
            // frequency that fits the QoS.
            let mut uniform = f64::INFINITY;
            for hfo in &cfg.modes.hfo {
                let mut t = 0.0;
                let mut e = 0.0;
                for layer in planner.layers() {
                    let best = Granularity::PAPER_SET
                        .iter()
                        .map(|&g| layer.evaluate(g, hfo, &cfg, planner.power()))
                        .min_by(|a, b| a.energy.partial_cmp(&b.energy).expect("finite"))
                        .expect("non-empty granularity set");
                    t += best.latency_secs;
                    e += best.energy.as_f64();
                }
                if t <= qos {
                    uniform = uniform.min(e);
                }
            }

            let seq = planner.optimize_sequence(qos).expect("sequence DP solves");
            println!(
                "{:>18} | {:>4.0}% | {:>9.3} | {:>9.3} | {:>9.3} | {:>12.3}",
                model.name,
                slack * 100.0,
                seq.predicted_energy.as_mj(),
                dp.total_energy * 1e3,
                greedy.total_energy * 1e3,
                uniform * 1e3
            );
        }
        repro_bench::rule(78);
    }
    println!("expectation: seq-DP <= DP <= greedy <= uniform on window energy");
    println!("(plain DP/greedy/uniform ignore inter-layer re-locks; seq-DP prices them)");
}
