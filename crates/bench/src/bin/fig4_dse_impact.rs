//! FIG4 — Impact of DAE granularity and HFO frequency on latency & power.
//!
//! Reproduces Fig. 4 of the paper: for a representative depthwise and
//! pointwise layer, sweep (left) the HFO frequency at a fixed granularity
//! and (right) the granularity at a fixed frequency, reporting latency and
//! average power.
//!
//! Run with: `cargo run --release -p repro-bench --bin fig4_dse_impact`

use dae_dvfs::{evaluate_point, DseConfig, Granularity, OperatingModes};
use stm32_rcc::Hertz;
use tinyengine::KernelProfile;
use tinynn::models::vww;
use tinynn::{Layer, LayerKind};

fn pick(kind: LayerKind) -> KernelProfile {
    let model = vww();
    let plan = model.plan().expect("vww plan resolves");
    let mut best: Option<KernelProfile> = None;
    for (nl, info) in model.layers().zip(plan.iter()) {
        let matches = matches!(
            (&nl.layer, kind),
            (Layer::Depthwise(_), LayerKind::Depthwise)
                | (Layer::Pointwise(_), LayerKind::Pointwise)
        );
        if matches {
            let p = tinyengine::layer_profile(&nl.layer, info);
            if best
                .as_ref()
                .is_none_or(|b| p.baseline_ops().mac > b.baseline_ops().mac)
            {
                best = Some(p);
            }
        }
    }
    best.expect("vww contains the layer kind")
}

fn sweep(profile: &KernelProfile, config: &DseConfig) {
    println!("\nLayer: {} ({})", profile.name, profile.kind);

    println!("  left panel: frequency sweep at g = 8");
    println!("  {:>10} | {:>12} | {:>10}", "HFO (MHz)", "latency", "power");
    let fig4 = OperatingModes::fig4();
    for hfo in &fig4.hfo {
        let pt = evaluate_point(profile, Granularity(8), hfo, config);
        println!(
            "  {:>10} | {:>9.3} ms | {:>7.1} mW",
            repro_bench::mhz(hfo.sysclk()),
            pt.latency_secs * 1e3,
            pt.energy.as_f64() / pt.latency_secs * 1e3
        );
    }

    println!("  right panel: granularity sweep at 216 MHz");
    println!("  {:>10} | {:>12} | {:>10} | {:>8}", "g", "latency", "power", "switches");
    let f216 = config
        .modes
        .hfo_at(Hertz::mhz(216))
        .copied()
        .expect("216 MHz in the ladder");
    let mut baseline_power = None;
    for g in Granularity::PAPER_SET {
        let pt = evaluate_point(profile, g, &f216, config);
        let mw = pt.energy.as_f64() / pt.latency_secs * 1e3;
        if g.is_baseline() {
            baseline_power = Some(mw);
        }
        println!(
            "  {:>10} | {:>9.3} ms | {:>7.1} mW | {:>8}",
            g.0,
            pt.latency_secs * 1e3,
            mw,
            pt.switches
        );
    }
    if let Some(base) = baseline_power {
        let best = Granularity::PAPER_SET
            .iter()
            .map(|&g| {
                let pt = evaluate_point(profile, g, &f216, config);
                pt.energy.as_f64() / pt.latency_secs * 1e3
            })
            .fold(f64::INFINITY, f64::min);
        println!(
            "  power drop vs g=0: {:.1}% (paper: up to 54.2%)",
            (base - best) / base * 100.0
        );
    }
}

fn main() {
    println!("FIG4: DAE granularity x clocking design space (VWW layers)");
    let config = DseConfig::paper();
    sweep(&pick(LayerKind::Depthwise), &config);
    sweep(&pick(LayerKind::Pointwise), &config);
}
