//! FIG4 — Impact of DAE granularity and HFO frequency on latency & power.
//!
//! Reproduces Fig. 4 of the paper: for a representative depthwise and
//! pointwise layer, sweep (left) the HFO frequency at a fixed granularity
//! and (right) the granularity at a fixed frequency, reporting latency and
//! average power.
//!
//! Run with: `cargo run --release -p repro-bench --bin fig4_dse_impact`

use std::sync::Arc;

use dae_dvfs::{CompiledLayer, DseConfig, Granularity, OperatingModes, Planner};
use stm32_power::PowerModel;
use stm32_rcc::Hertz;
use tinynn::models::vww;
use tinynn::LayerKind;

fn pick(planner: &Planner, kind: LayerKind) -> &CompiledLayer {
    planner
        .layers()
        .iter()
        .filter(|l| l.profile().kind == kind)
        .max_by_key(|l| l.profile().baseline_ops().mac)
        .expect("vww contains the layer kind")
}

fn sweep(layer: &CompiledLayer, config: &DseConfig, power: &Arc<PowerModel>) {
    let profile = layer.profile();
    println!("\nLayer: {} ({})", profile.name, profile.kind);

    println!("  left panel: frequency sweep at g = 8");
    println!(
        "  {:>10} | {:>12} | {:>10}",
        "HFO (MHz)", "latency", "power"
    );
    let fig4 = OperatingModes::fig4();
    for hfo in &fig4.hfo {
        let pt = layer.evaluate(Granularity(8), hfo, config, power);
        println!(
            "  {:>10} | {:>9.3} ms | {:>7.1} mW",
            repro_bench::mhz(hfo.sysclk()),
            pt.latency_secs * 1e3,
            pt.energy.as_f64() / pt.latency_secs * 1e3
        );
    }

    println!("  right panel: granularity sweep at 216 MHz");
    println!(
        "  {:>10} | {:>12} | {:>10} | {:>8}",
        "g", "latency", "power", "switches"
    );
    let f216 = config
        .modes
        .hfo_at(Hertz::mhz(216))
        .copied()
        .expect("216 MHz in the ladder");
    let mut baseline_power = None;
    for g in Granularity::PAPER_SET {
        let pt = layer.evaluate(g, &f216, config, power);
        let mw = pt.energy.as_f64() / pt.latency_secs * 1e3;
        if g.is_baseline() {
            baseline_power = Some(mw);
        }
        println!(
            "  {:>10} | {:>9.3} ms | {:>7.1} mW | {:>8}",
            g.0,
            pt.latency_secs * 1e3,
            mw,
            pt.switches
        );
    }
    if let Some(base) = baseline_power {
        let best = Granularity::PAPER_SET
            .iter()
            .map(|&g| {
                let pt = layer.evaluate(g, &f216, config, power);
                pt.energy.as_f64() / pt.latency_secs * 1e3
            })
            .fold(f64::INFINITY, f64::min);
        println!(
            "  power drop vs g=0: {:.1}% (paper: up to 54.2%)",
            (base - best) / base * 100.0
        );
    }
}

fn main() {
    println!("FIG4: DAE granularity x clocking design space (VWW layers)");
    let config = DseConfig::paper();
    let planner = Planner::new(&vww(), &config).expect("planner builds");
    sweep(
        pick(&planner, LayerKind::Depthwise),
        &config,
        planner.power(),
    );
    sweep(
        pick(&planner, LayerKind::Pointwise),
        &config,
        planner.power(),
    );
}
