//! ABLATION — DVFS with vs without the DAE transform.
//!
//! Runs the full pipeline twice: once with the paper's granularity set and
//! once with `g = 0` only (per-layer frequency scaling without decoupled
//! access-execute). The delta isolates the contribution of DAE itself.
//!
//! Run with: `cargo run --release -p repro-bench --bin ablation_dae`

use dae_dvfs::{DseConfig, Granularity, Planner};
use repro_bench::{models, SLACKS};

fn main() {
    let full = DseConfig::paper();
    let mut no_dae = DseConfig::paper();
    no_dae.granularities = vec![Granularity(0)];

    println!("ABLATION: DAE contribution (iso-latency window energy, mJ)");
    println!(
        "{:>18} | {:>5} | {:>11} | {:>11} | {:>10}",
        "model", "QoS", "DAE+DVFS", "DVFS only", "DAE gain"
    );
    repro_bench::rule(70);

    for model in models() {
        // Two planners per model (one per granularity universe); each is
        // shared by all three slack levels.
        let full_planner = Planner::new(&model, &full).expect("full planner builds");
        let no_dae_planner = Planner::new(&model, &no_dae).expect("dvfs-only planner builds");
        for slack in SLACKS {
            let with_dae = full_planner.run(slack).expect("full pipeline");
            let without = no_dae_planner.run(slack).expect("dvfs-only pipeline");
            let gain = (without.total_energy.as_f64() - with_dae.total_energy.as_f64())
                / without.total_energy.as_f64()
                * 100.0;
            println!(
                "{:>18} | {:>4.0}% | {:>8.3} mJ | {:>8.3} mJ | {:>9.1}%",
                model.name,
                slack * 100.0,
                with_dae.total_energy.as_mj(),
                without.total_energy.as_mj(),
                gain
            );
        }
        repro_bench::rule(70);
    }
    println!("expectation: DAE+DVFS <= DVFS-only on every row (g=0 is in the full set)");
}
