//! Shared helpers for the reproduction benchmark harness.
//!
//! Every figure and table of the paper has a binary under `src/bin/` that
//! regenerates it (see DESIGN.md's experiment index) and a Criterion bench
//! under `benches/` that measures the code paths behind it.

pub mod httpc;
pub mod json;
pub mod serving;

use dae_dvfs::{DseConfig, FrequencyMap, Stm32F767Target};
use stm32_rcc::Hertz;
use tinynn::{LayerKind, Model};

/// The paper's three QoS slack levels.
pub const SLACKS: [f64; 3] = [0.10, 0.30, 0.50];

/// The paper's three evaluation models at paper-like sizes.
pub fn models() -> Vec<Model> {
    tinynn::models::paper_models()
}

/// The standard exploration configuration.
pub fn config() -> DseConfig {
    DseConfig::paper()
}

/// The standard target platform (the paper's STM32F767).
///
/// Figure bins that sweep the *paper* setup build their planners through
/// this; the ablation bins, which mutate individual `DseConfig` fields,
/// stay on the `Planner::new` compatibility layer by design.
pub fn target() -> Stm32F767Target {
    Stm32F767Target::paper()
}

/// Prints a horizontal rule sized for the standard tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a frequency as integer MHz.
pub fn mhz(f: Hertz) -> String {
    format!("{}", f.as_u64() / 1_000_000)
}

/// Summary statistics of a Fig. 6 frequency map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Stats {
    /// Share of pointwise layers at the maximum 216 MHz.
    pub pw_at_max: f64,
    /// Share of depthwise layers at the maximum 216 MHz.
    pub dw_at_max: f64,
    /// Share of pointwise layers at or below 100 MHz.
    pub pw_low: f64,
    /// Share of depthwise layers at or below 100 MHz.
    pub dw_low: f64,
    /// Share of all layers at 216 MHz.
    pub all_at_max: f64,
    /// Share of DAE-capable layers at granularity 16.
    pub g16_share: f64,
}

/// Computes the Fig. 6 summary statistics for one deployment map.
pub fn fig6_stats(map: &FrequencyMap) -> Fig6Stats {
    let max = Hertz::mhz(216);
    let low = Hertz::mhz(100);
    Fig6Stats {
        pw_at_max: map.share_at(LayerKind::Pointwise, max),
        dw_at_max: map.share_at(LayerKind::Depthwise, max),
        pw_low: map.share_at_or_below(LayerKind::Pointwise, low),
        dw_low: map.share_at_or_below(LayerKind::Depthwise, low),
        all_at_max: map.overall_share_at(max),
        g16_share: map.granularity_share(16),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_models_three_slacks() {
        assert_eq!(models().len(), 3);
        assert_eq!(SLACKS.len(), 3);
    }

    #[test]
    fn mhz_formatting() {
        assert_eq!(mhz(Hertz::mhz(216)), "216");
    }
}
