//! A minimal blocking HTTP/1.1 client for the serving benchmarks and the
//! wire-conformance tests.
//!
//! One request per connection (`Connection: close`), hand-rolled over
//! [`TcpStream`] like everything else in this offline workspace. The
//! point is not generality — it speaks exactly the protocol subset the
//! plan server serves, and keeps the measuring side dependency-free so
//! client and server cannot share a parsing bug through a common
//! library.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A parsed response: the status code plus the raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the response line.
    pub status: u16,
    /// Body bytes (everything past the blank line; with
    /// `Connection: close` that is exactly the payload).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8, lossily.
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issues one `GET` over a fresh connection.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed response heads
/// as [`std::io::Error`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<HttpResponse> {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n"),
    )
}

/// Issues one `POST` with a body over a fresh connection.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed response heads
/// as [`std::io::Error`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<HttpResponse> {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\ncontent-type: application/json\r\n\
             content-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Sends raw request bytes and parses the close-delimited response.
fn request(addr: SocketAddr, raw: &str) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(raw.as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    parse_response(&response)
}

/// Splits status line and body out of a complete response.
fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response head never terminated"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let status_line = head.split("\r\n").next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    Ok(HttpResponse {
        status,
        body: raw[head_end + 4..].to_vec(),
    })
}

/// The result of replaying a request list against a server.
#[derive(Debug)]
pub struct Replay {
    /// Per-request wall-clock latency, in trace order.
    pub latency_secs: Vec<f64>,
    /// Per-request response bodies, in trace order.
    pub bodies: Vec<String>,
}

impl Replay {
    /// The `q`-quantile (0…1) of the latency distribution, in
    /// milliseconds (nearest-rank on the sorted sample).
    pub fn percentile_ms(&self, q: f64) -> f64 {
        if self.latency_secs.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latency_secs.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)] * 1e3
    }
}

/// Replays `(path, body)` POST requests against `addr` from `clients`
/// threads (striped round-robin, preserving trace order in the result),
/// panicking on any non-200 — the benches and the smoke gate want loud
/// failures, not averaged-in errors.
///
/// # Errors
///
/// The first transport failure any client hit.
pub fn replay_posts(
    addr: SocketAddr,
    requests: &[(String, String)],
    clients: usize,
) -> std::io::Result<Replay> {
    let clients = clients.max(1);
    let slots: Vec<std::io::Result<(f64, String)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|offset| {
                scope.spawn(move || {
                    requests
                        .iter()
                        .enumerate()
                        .skip(offset)
                        .step_by(clients)
                        .map(|(i, (path, body))| {
                            let t = Instant::now();
                            let response = post(addr, path, body)?;
                            let latency = t.elapsed().as_secs_f64();
                            assert_eq!(
                                response.status,
                                200,
                                "request {i} failed: {}",
                                response.body_str()
                            );
                            Ok((i, latency, response.body_str()))
                        })
                        .collect::<Vec<std::io::Result<(usize, f64, String)>>>()
                })
            })
            .collect();
        let mut slots: Vec<std::io::Result<(f64, String)>> = (0..requests.len())
            .map(|_| Err(std::io::Error::other("unanswered")))
            .collect();
        for handle in handles {
            for item in handle.join().expect("replay client panicked") {
                match item {
                    Ok((i, latency, body)) => slots[i] = Ok((latency, body)),
                    Err(e) => return vec![Err(e)],
                }
            }
        }
        slots
    });
    let mut latency_secs = Vec::with_capacity(requests.len());
    let mut bodies = Vec::with_capacity(requests.len());
    for slot in slots {
        let (latency, body) = slot?;
        latency_secs.push(latency);
        bodies.push(body);
    }
    Ok(Replay {
        latency_secs,
        bodies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_parsing_extracts_status_and_body() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\ncontent-length: 2\r\n\r\nhi";
        let response = parse_response(raw).expect("parses");
        assert_eq!(response.status, 429);
        assert_eq!(response.body, b"hi");
    }

    #[test]
    fn truncated_responses_are_errors_not_panics() {
        assert!(parse_response(b"HTTP/1.1 200").is_err());
        assert!(parse_response(b"garbage\r\n\r\n").is_err());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let replay = Replay {
            latency_secs: vec![0.001, 0.002, 0.003, 0.004, 0.010],
            bodies: Vec::new(),
        };
        assert_eq!(replay.percentile_ms(0.5), 3.0);
        assert_eq!(replay.percentile_ms(1.0), 10.0);
        assert_eq!(replay.percentile_ms(0.0), 1.0);
    }
}
