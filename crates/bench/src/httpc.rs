//! A minimal blocking HTTP/1.1 client for the serving benchmarks and the
//! wire-conformance tests.
//!
//! Two shapes, both hand-rolled over [`TcpStream`] like everything else
//! in this offline workspace: the one-shot [`get`]/[`post`] helpers
//! (`Connection: close`, used by the conformance tests), and the
//! keep-alive [`Client`] the replay harness uses — one persistent
//! connection per client thread, responses framed by `Content-Length`,
//! so the measured warm-path latency is the request round-trip, not a
//! TCP handshake per request. The point is not generality — it speaks
//! exactly the protocol subset the plan server serves, and keeps the
//! measuring side dependency-free so client and server cannot share a
//! parsing bug through a common library.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A parsed response: the status code plus the raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the response line.
    pub status: u16,
    /// Body bytes (everything past the blank line; with
    /// `Connection: close` that is exactly the payload).
    pub body: Vec<u8>,
    /// The `X-Plan-Receipt` header value, when the server sent one
    /// (plan responses with receipts enabled).
    pub receipt: Option<String>,
}

impl HttpResponse {
    /// The body as UTF-8, lossily.
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issues one `GET` over a fresh connection.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed response heads
/// as [`std::io::Error`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<HttpResponse> {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n"),
    )
}

/// Issues one `POST` with a body over a fresh connection.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed response heads
/// as [`std::io::Error`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<HttpResponse> {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\ncontent-type: application/json\r\n\
             content-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Sends raw request bytes and parses the close-delimited response.
fn request(addr: SocketAddr, raw: &str) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(raw.as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    parse_response(&response)
}

/// Splits status line and body out of a complete response.
fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response head never terminated"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let status_line = head.split("\r\n").next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    Ok(HttpResponse {
        status,
        body: raw[head_end + 4..].to_vec(),
        receipt: receipt_header(head),
    })
}

/// Extracts the `X-Plan-Receipt` header value from a response head, if
/// present (header names compared case-insensitively, as HTTP requires).
fn receipt_header(head: &str) -> Option<String> {
    head.split("\r\n").skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("x-plan-receipt")
            .then(|| value.trim().to_string())
    })
}

/// A keep-alive connection to the plan server: one persistent stream,
/// requests written back-to-back, responses framed by their
/// `Content-Length` (which the server always sends).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects and configures timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures as [`std::io::Error`].
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Issues one `POST` on the persistent connection and reads its
    /// framed response.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and malformed/unframed response
    /// heads as [`std::io::Error`].
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        let raw = format!(
            "POST {path} HTTP/1.1\r\ncontent-type: application/json\r\n\
             content-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(raw.as_bytes())?;
        self.read_response()
    }

    /// Reads one `Content-Length`-framed response off the stream.
    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let head_end = loop {
            if let Some(end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break end;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk)? {
                0 => return Err(bad("connection closed before the response head")),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        };
        let head = std::str::from_utf8(&self.buf[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
        let status_line = head.split("\r\n").next().unwrap_or_default();
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let content_length = head
            .split("\r\n")
            .skip(1)
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse::<usize>().ok())?
            })
            .ok_or_else(|| bad("keep-alive response without content-length"))?;
        let receipt = receipt_header(head);
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk)? {
                0 => return Err(bad("connection closed mid-body")),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(HttpResponse {
            status,
            body,
            receipt,
        })
    }
}

/// The result of replaying a request list against a server.
#[derive(Debug)]
pub struct Replay {
    /// Per-request wall-clock latency, in trace order.
    pub latency_secs: Vec<f64>,
    /// Per-request response bodies, in trace order.
    pub bodies: Vec<String>,
    /// Per-request `X-Plan-Receipt` header values, in trace order
    /// (`None` where the server sent no receipt).
    pub receipts: Vec<Option<String>>,
}

impl Replay {
    /// The `q`-quantile (0…1) of the latency distribution, in
    /// milliseconds (nearest-rank on the sorted sample).
    pub fn percentile_ms(&self, q: f64) -> f64 {
        if self.latency_secs.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latency_secs.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)] * 1e3
    }
}

/// Replays `(path, body)` POST requests against `addr` from `clients`
/// threads (striped round-robin, preserving trace order in the result),
/// panicking on any non-200 — the benches and the smoke gate want loud
/// failures, not averaged-in errors.
///
/// Each client thread holds **one keep-alive [`Client`] connection** for
/// its whole stripe, so the per-request latency is the server round-trip
/// alone. A server worker serves one connection at a time, so `clients`
/// must not exceed the server's connection-worker count or the extra
/// connections queue behind the first round.
///
/// # Errors
///
/// The first transport failure any client hit.
pub fn replay_posts(
    addr: SocketAddr,
    requests: &[(String, String)],
    clients: usize,
) -> std::io::Result<Replay> {
    let clients = clients.max(1);
    type Slot = (f64, String, Option<String>);
    let slots: Vec<std::io::Result<Slot>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|offset| {
                scope.spawn(move || {
                    let mut client = match Client::connect(addr) {
                        Ok(client) => client,
                        Err(e) => return vec![Err(e)],
                    };
                    requests
                        .iter()
                        .enumerate()
                        .skip(offset)
                        .step_by(clients)
                        .map(|(i, (path, body))| {
                            let t = Instant::now();
                            let response = client.post(path, body)?;
                            let latency = t.elapsed().as_secs_f64();
                            assert_eq!(
                                response.status,
                                200,
                                "request {i} failed: {}",
                                response.body_str()
                            );
                            Ok((i, latency, response.body_str(), response.receipt))
                        })
                        .collect::<Vec<std::io::Result<(usize, f64, String, Option<String>)>>>()
                })
            })
            .collect();
        let mut slots: Vec<std::io::Result<Slot>> = (0..requests.len())
            .map(|_| Err(std::io::Error::other("unanswered")))
            .collect();
        for handle in handles {
            for item in handle.join().expect("replay client panicked") {
                match item {
                    Ok((i, latency, body, receipt)) => slots[i] = Ok((latency, body, receipt)),
                    Err(e) => return vec![Err(e)],
                }
            }
        }
        slots
    });
    let mut latency_secs = Vec::with_capacity(requests.len());
    let mut bodies = Vec::with_capacity(requests.len());
    let mut receipts = Vec::with_capacity(requests.len());
    for slot in slots {
        let (latency, body, receipt) = slot?;
        latency_secs.push(latency);
        bodies.push(body);
        receipts.push(receipt);
    }
    Ok(Replay {
        latency_secs,
        bodies,
        receipts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_parsing_extracts_status_and_body() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\ncontent-length: 2\r\n\r\nhi";
        let response = parse_response(raw).expect("parses");
        assert_eq!(response.status, 429);
        assert_eq!(response.body, b"hi");
        assert_eq!(response.receipt, None);
    }

    #[test]
    fn response_parsing_extracts_the_receipt_header() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\
                    x-plan-receipt: fp=00ff;path=solved\r\n\r\nok";
        let response = parse_response(raw).expect("parses");
        assert_eq!(response.receipt.as_deref(), Some("fp=00ff;path=solved"));
        // Case-insensitive header-name match, like content-length.
        let raw = b"HTTP/1.1 200 OK\r\nX-Plan-Receipt: fp=1\r\ncontent-length: 0\r\n\r\n";
        let response = parse_response(raw).expect("parses");
        assert_eq!(response.receipt.as_deref(), Some("fp=1"));
    }

    #[test]
    fn truncated_responses_are_errors_not_panics() {
        assert!(parse_response(b"HTTP/1.1 200").is_err());
        assert!(parse_response(b"garbage\r\n\r\n").is_err());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let replay = Replay {
            latency_secs: vec![0.001, 0.002, 0.003, 0.004, 0.010],
            bodies: Vec::new(),
            receipts: Vec::new(),
        };
        assert_eq!(replay.percentile_ms(0.5), 3.0);
        assert_eq!(replay.percentile_ms(1.0), 10.0);
        assert_eq!(replay.percentile_ms(0.0), 1.0);
    }
}
