//! Exhaustive validation of the PLL math against first principles.

use stm32_rcc::{flash_wait_states, ClockSource, ConfigSpace, Hertz, PllConfig, RccError};

/// Sweeps a coarse grid over the entire divider space and cross-checks
/// every accept/reject decision against the raw datasheet arithmetic.
#[test]
fn accept_reject_matches_datasheet_arithmetic() {
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for hse_mhz in (1..=50u64).step_by(7) {
        for m in (1..=70u32).step_by(3) {
            for n in (40..=440u32).step_by(13) {
                for p in [2u32, 4, 6, 8] {
                    let src = ClockSource::hse(Hertz::mhz(hse_mhz));
                    let result = PllConfig::new(src, m, n, p);
                    let vco_in_hz = hse_mhz * 1_000_000 / u64::from(m.max(1));
                    let valid = (2..=63).contains(&m)
                        && (50..=432).contains(&n)
                        && (1_000_000..=2_000_000).contains(&vco_in_hz)
                        && {
                            let vco_out = hse_mhz * 1_000_000 * u64::from(n) / u64::from(m);
                            (100_000_000..=432_000_000).contains(&vco_out)
                                && vco_out / u64::from(p) <= 216_000_000
                        };
                    match (result.is_ok(), valid) {
                        (true, true) => accepted += 1,
                        (false, false) => rejected += 1,
                        (got, want) => panic!(
                            "mismatch at hse={hse_mhz} m={m} n={n} p={p}: got ok={got}, want ok={want}"
                        ),
                    }
                }
            }
        }
    }
    assert!(accepted > 100, "sweep accepted too few configs: {accepted}");
    assert!(
        rejected > 1000,
        "sweep rejected too few configs: {rejected}"
    );
}

/// Integer-division subtlety: `vco_input` uses integer hertz, so the
/// acceptance test above must agree for non-divisible inputs too.
#[test]
fn non_divisible_inputs_behave() {
    // 7 MHz / 5 = 1.4 MHz: valid VCO input.
    let cfg = PllConfig::new(ClockSource::hse(Hertz::mhz(7)), 5, 100, 2);
    assert!(cfg.is_ok());
    let cfg = cfg.unwrap();
    assert_eq!(cfg.vco_input().as_u64(), 1_400_000);
    assert_eq!(cfg.vco_output().as_u64(), 140_000_000);
    assert_eq!(cfg.sysclk().as_u64(), 70_000_000);
}

#[test]
fn every_enumerated_config_round_trips_its_label() {
    for cfg in ConfigSpace::wide().enumerate_pll() {
        let (hse, m, n) = cfg.label_tuple();
        let rebuilt = PllConfig::new(ClockSource::hse(Hertz::mhz(hse)), m, n, cfg.pllp())
            .expect("enumerated config must rebuild");
        assert_eq!(rebuilt, cfg);
    }
}

#[test]
fn wait_state_boundaries_are_exact() {
    for (boundary_mhz, below, above) in [
        (30u64, 0u8, 1u8),
        (60, 1, 2),
        (90, 2, 3),
        (120, 3, 4),
        (150, 4, 5),
        (180, 5, 6),
        (210, 6, 7),
    ] {
        assert_eq!(
            flash_wait_states(Hertz::mhz(boundary_mhz)).wait_states(),
            below,
            "at {boundary_mhz} MHz"
        );
        assert_eq!(
            flash_wait_states(Hertz::new(boundary_mhz * 1_000_000 + 1)).wait_states(),
            above,
            "just above {boundary_mhz} MHz"
        );
    }
}

#[test]
fn error_messages_name_the_violated_constraint() {
    let cases: Vec<(RccError, &str)> = vec![
        (
            PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 1, 100, 2).unwrap_err(),
            "PLLM",
        ),
        (
            PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 20, 2).unwrap_err(),
            "PLLN",
        ),
        (
            PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 100, 3).unwrap_err(),
            "PLLP",
        ),
        (
            PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 60, 200, 2).unwrap_err(),
            "VCO input",
        ),
    ];
    for (err, needle) in cases {
        assert!(
            err.to_string().contains(needle),
            "'{err}' should mention {needle}"
        );
    }
}
