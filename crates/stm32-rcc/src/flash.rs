//! Flash wait-state ladder of the STM32F7 at nominal supply voltage.
//!
//! Embedded flash cannot keep up with the core at high SYSCLK, so the flash
//! interface inserts wait states. This is the physical mechanism that makes
//! *memory-bound* code scale sub-linearly with frequency — the foundation of
//! the paper's decision to run memory-bound DAE segments at the low LFO
//! frequency: the same flash/SRAM access takes more *core cycles* (but not
//! less wall time) at a higher clock, so the energy spent waiting grows with
//! frequency while latency barely improves.

use crate::hertz::Hertz;

/// Number of flash wait states for a given HCLK/SYSCLK frequency.
///
/// Values follow RM0410 Table 7 for VDD = 2.7–3.6 V: one extra wait state per
/// 30 MHz step, up to 7 WS at 216 MHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlashLatency(pub u8);

impl FlashLatency {
    /// The wait-state count as plain cycles.
    pub const fn wait_states(self) -> u8 {
        self.0
    }

    /// Total cycles for one flash access: 1 issue cycle + wait states.
    pub const fn access_cycles(self) -> u64 {
        1 + self.0 as u64
    }
}

/// A parameterized wait-state ladder: one extra wait state per started
/// `step` band of SYSCLK, capped at `max_wait_states`.
///
/// The STM32F767 instance ([`WaitStateLadder::stm32f767`]) reproduces
/// RM0410 Table 7; other Cortex-M parts differ only in the band width and
/// the cap (e.g. slower flash steps every 24 MHz, faster parts cap lower),
/// which is exactly what a portable target description needs to express.
///
/// ```
/// use stm32_rcc::{Hertz, WaitStateLadder};
///
/// let f767 = WaitStateLadder::stm32f767();
/// assert_eq!(f767.latency(Hertz::mhz(216)).wait_states(), 7);
/// let slow_flash = WaitStateLadder::new(Hertz::mhz(24), 15);
/// assert_eq!(slow_flash.latency(Hertz::mhz(216)).wait_states(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WaitStateLadder {
    /// Width of one wait-state band.
    pub step: Hertz,
    /// Upper bound on the inserted wait states.
    pub max_wait_states: u8,
}

impl WaitStateLadder {
    /// The STM32F7 ladder at nominal supply (RM0410, 2.7–3.6 V): one wait
    /// state per started 30 MHz band, capped at 7.
    pub const fn stm32f767() -> Self {
        WaitStateLadder {
            step: Hertz::mhz(30),
            max_wait_states: 7,
        }
    }

    /// Builds a ladder with an explicit band width and cap.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub const fn new(step: Hertz, max_wait_states: u8) -> Self {
        assert!(step.as_u64() > 0, "wait-state band width must be non-zero");
        WaitStateLadder {
            step,
            max_wait_states,
        }
    }

    /// The wait states this ladder inserts at `sysclk`: zero up to and
    /// including one band, then +1 per started band, capped.
    pub const fn latency(&self, sysclk: Hertz) -> FlashLatency {
        let hz = sysclk.as_u64();
        if hz == 0 {
            return FlashLatency(0);
        }
        let ws = (hz - 1) / self.step.as_u64();
        let cap = self.max_wait_states as u64;
        FlashLatency(if ws < cap { ws } else { cap } as u8)
    }
}

impl Default for WaitStateLadder {
    fn default() -> Self {
        WaitStateLadder::stm32f767()
    }
}

/// Computes the flash wait states required at `sysclk` (RM0410, 2.7–3.6 V).
///
/// Shorthand for the [`WaitStateLadder::stm32f767`] ladder.
///
/// ```
/// use stm32_rcc::{flash_wait_states, Hertz};
///
/// assert_eq!(flash_wait_states(Hertz::mhz(30)).wait_states(), 0);
/// assert_eq!(flash_wait_states(Hertz::mhz(50)).wait_states(), 1);
/// assert_eq!(flash_wait_states(Hertz::mhz(216)).wait_states(), 7);
/// ```
pub fn flash_wait_states(sysclk: Hertz) -> FlashLatency {
    WaitStateLadder::stm32f767().latency(sysclk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_rm0410() {
        let cases = [
            (1u64, 0u8),
            (16, 0),
            (30, 0),
            (31, 1),
            (50, 1),
            (60, 1),
            (61, 2),
            (75, 2),
            (90, 2),
            (100, 3),
            (120, 3),
            (150, 4),
            (168, 5),
            (180, 5),
            (210, 6),
            (216, 7),
        ];
        for (mhz, ws) in cases {
            assert_eq!(
                flash_wait_states(Hertz::mhz(mhz)).wait_states(),
                ws,
                "at {mhz} MHz"
            );
        }
    }

    #[test]
    fn zero_frequency_is_zero_ws() {
        assert_eq!(flash_wait_states(Hertz::new(0)).wait_states(), 0);
    }

    #[test]
    fn access_cycles_include_issue_cycle() {
        assert_eq!(flash_wait_states(Hertz::mhz(216)).access_cycles(), 8);
        assert_eq!(flash_wait_states(Hertz::mhz(16)).access_cycles(), 1);
    }

    #[test]
    fn monotone_in_frequency() {
        let mut last = 0;
        for mhz in 1..=216 {
            let ws = flash_wait_states(Hertz::mhz(mhz)).wait_states();
            assert!(ws >= last, "wait states decreased at {mhz} MHz");
            last = ws;
        }
    }

    #[test]
    fn capped_at_seven() {
        assert_eq!(flash_wait_states(Hertz::mhz(400)).wait_states(), 7);
    }
}
