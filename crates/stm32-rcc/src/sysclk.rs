//! SYSCLK source selection: HSI, HSE direct, or PLL.

use std::fmt;

use crate::error::RccError;
use crate::hertz::Hertz;
use crate::pll::PllConfig;
use crate::{HSE_MAX, HSE_MIN, HSI_FREQUENCY};

/// One of the two PLL/SYSCLK input clock sources.
///
/// The paper restricts its exploration to the HSE because the HSI "yields
/// higher power consumption compared to the HSE and is also prone to drift
/// and jitter" (Sec. II). Both are modelled so that the trade-off is
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockSource {
    /// High-speed internal RC oscillator, fixed at 16 MHz.
    Hsi,
    /// High-speed external crystal/clock at the given frequency.
    Hse(Hertz),
}

impl ClockSource {
    /// Convenience constructor for an HSE source.
    ///
    /// ```
    /// use stm32_rcc::{ClockSource, Hertz};
    /// assert_eq!(ClockSource::hse(Hertz::mhz(25)).frequency(), Hertz::mhz(25));
    /// ```
    pub const fn hse(freq: Hertz) -> Self {
        ClockSource::Hse(freq)
    }

    /// The source's output frequency.
    pub const fn frequency(self) -> Hertz {
        match self {
            ClockSource::Hsi => HSI_FREQUENCY,
            ClockSource::Hse(f) => f,
        }
    }

    /// Whether this source is the internal oscillator.
    pub const fn is_internal(self) -> bool {
        matches!(self, ClockSource::Hsi)
    }

    /// Validates the source against board limits.
    ///
    /// # Errors
    ///
    /// Returns [`RccError::HseOutOfRange`] for an HSE outside 1–50 MHz and
    /// [`RccError::ZeroSourceFrequency`] for a 0 Hz source.
    pub fn validate(self) -> Result<(), RccError> {
        match self {
            ClockSource::Hsi => Ok(()),
            ClockSource::Hse(f) => {
                if f.is_zero() {
                    Err(RccError::ZeroSourceFrequency)
                } else if f < HSE_MIN || f > HSE_MAX {
                    Err(RccError::HseOutOfRange(f))
                } else {
                    Ok(())
                }
            }
        }
    }
}

impl fmt::Display for ClockSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockSource::Hsi => write!(f, "HSI(16 MHz)"),
            ClockSource::Hse(hz) => write!(f, "HSE({hz})"),
        }
    }
}

/// A complete SYSCLK configuration: which mux input drives the system clock.
///
/// The three alternatives mirror Fig. 1 of the paper: SYSCLK can be wired
/// directly to the HSI or HSE, or to the PLL output.
///
/// ```
/// use stm32_rcc::{ClockSource, Hertz, PllConfig, SysclkConfig};
///
/// # fn main() -> Result<(), stm32_rcc::RccError> {
/// let lfo = SysclkConfig::hse_direct(Hertz::mhz(50));
/// assert_eq!(lfo.sysclk(), Hertz::mhz(50));
///
/// let hfo = SysclkConfig::Pll(PllConfig::new(
///     ClockSource::hse(Hertz::mhz(50)), 25, 216, 2)?);
/// assert_eq!(hfo.sysclk(), Hertz::mhz(216));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysclkConfig {
    /// SYSCLK driven directly by the 16 MHz HSI.
    HsiDirect,
    /// SYSCLK driven directly by the HSE at the given frequency.
    HseDirect(Hertz),
    /// SYSCLK driven by the PLL output.
    Pll(PllConfig),
}

impl SysclkConfig {
    /// Convenience constructor for a direct-HSE configuration.
    pub const fn hse_direct(freq: Hertz) -> Self {
        SysclkConfig::HseDirect(freq)
    }

    /// The resulting SYSCLK frequency.
    pub fn sysclk(&self) -> Hertz {
        match self {
            SysclkConfig::HsiDirect => HSI_FREQUENCY,
            SysclkConfig::HseDirect(f) => *f,
            SysclkConfig::Pll(pll) => pll.sysclk(),
        }
    }

    /// Whether the PLL is engaged (and therefore drawing power and imposing
    /// its re-lock penalty when reconfigured).
    pub const fn uses_pll(&self) -> bool {
        matches!(self, SysclkConfig::Pll(_))
    }

    /// The VCO frequency if the PLL drives SYSCLK, else `None`.
    ///
    /// The VCO frequency is the power-relevant hidden state behind
    /// iso-frequency configurations (Fig. 2 of the paper).
    pub fn vco_output(&self) -> Option<Hertz> {
        match self {
            SysclkConfig::Pll(pll) => Some(pll.vco_output()),
            _ => None,
        }
    }

    /// The PLL configuration if present.
    pub const fn pll(&self) -> Option<&PllConfig> {
        match self {
            SysclkConfig::Pll(p) => Some(p),
            _ => None,
        }
    }

    /// Validates the configuration against all datasheet constraints.
    ///
    /// # Errors
    ///
    /// Propagates source and PLL validation errors; see [`RccError`].
    pub fn validate(&self) -> Result<(), RccError> {
        match self {
            SysclkConfig::HsiDirect => Ok(()),
            SysclkConfig::HseDirect(f) => ClockSource::Hse(*f).validate(),
            SysclkConfig::Pll(pll) => pll.validate(),
        }
    }
}

impl fmt::Display for SysclkConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysclkConfig::HsiDirect => write!(f, "HSI direct (16 MHz)"),
            SysclkConfig::HseDirect(hz) => write!(f, "HSE direct ({hz})"),
            SysclkConfig::Pll(pll) => write!(f, "{pll}"),
        }
    }
}

impl From<PllConfig> for SysclkConfig {
    fn from(pll: PllConfig) -> Self {
        SysclkConfig::Pll(pll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hsi_is_16_mhz() {
        assert_eq!(SysclkConfig::HsiDirect.sysclk(), Hertz::mhz(16));
        assert_eq!(ClockSource::Hsi.frequency(), Hertz::mhz(16));
        assert!(ClockSource::Hsi.is_internal());
    }

    #[test]
    fn hse_direct_passes_through() {
        let cfg = SysclkConfig::hse_direct(Hertz::mhz(50));
        assert_eq!(cfg.sysclk(), Hertz::mhz(50));
        assert!(!cfg.uses_pll());
        assert_eq!(cfg.vco_output(), None);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn hse_out_of_range_rejected() {
        let cfg = SysclkConfig::hse_direct(Hertz::mhz(60));
        assert_eq!(cfg.validate(), Err(RccError::HseOutOfRange(Hertz::mhz(60))));
        let cfg = SysclkConfig::hse_direct(Hertz::khz(500));
        assert!(matches!(cfg.validate(), Err(RccError::HseOutOfRange(_))));
    }

    #[test]
    fn zero_hse_rejected() {
        let cfg = SysclkConfig::hse_direct(Hertz::new(0));
        assert_eq!(cfg.validate(), Err(RccError::ZeroSourceFrequency));
    }

    #[test]
    fn pll_config_roundtrip() {
        let pll = PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 216, 2).unwrap();
        let cfg = SysclkConfig::from(pll);
        assert!(cfg.uses_pll());
        assert_eq!(cfg.sysclk(), Hertz::mhz(216));
        assert_eq!(cfg.vco_output(), Some(Hertz::mhz(432)));
        assert_eq!(cfg.pll(), Some(&pll));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            SysclkConfig::hse_direct(Hertz::mhz(50)).to_string(),
            "HSE direct (50 MHz)"
        );
        assert!(SysclkConfig::HsiDirect.to_string().contains("HSI"));
    }
}
