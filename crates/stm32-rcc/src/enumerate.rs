//! Design-space enumeration of valid clocking configurations.
//!
//! Step 2 of the paper's methodology sweeps `PLLN ∈ {75,100,150,168,216,
//! 336,432}` and `PLLM ∈ {25,50}` against a 50 MHz HSE with `PLLP = 2`.
//! This module enumerates every *valid* configuration in such a grid, groups
//! iso-frequency alternatives, and ranks them by VCO frequency — the proxy
//! the RCC layer can offer for power (the `stm32-power` crate turns the VCO
//! frequency into milliwatts).

use std::collections::BTreeMap;

use crate::hertz::Hertz;
use crate::pll::PllConfig;
use crate::sysclk::{ClockSource, SysclkConfig};

/// `PLLN` values explored by the paper (Sec. III-B).
pub const PAPER_PLLN_VALUES: [u32; 7] = [75, 100, 150, 168, 216, 336, 432];

/// `PLLM` values explored by the paper (Sec. III-B).
pub const PAPER_PLLM_VALUES: [u32; 2] = [25, 50];

/// All iso-frequency PLL alternatives for one SYSCLK value, sorted by VCO
/// frequency (coolest first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsoFrequencyGroup {
    /// The shared SYSCLK output frequency.
    pub sysclk: Hertz,
    /// The alternatives producing it, ascending VCO frequency.
    pub configs: Vec<PllConfig>,
}

impl IsoFrequencyGroup {
    /// The configuration with the lowest VCO frequency — the power-optimal
    /// choice at RCC level ("the combinations that minimize the power
    /// consumption are selected for the target SYSCLK", Sec. II-A).
    pub fn coolest(&self) -> &PllConfig {
        &self.configs[0]
    }

    /// The configuration with the highest VCO frequency.
    pub fn hottest(&self) -> &PllConfig {
        self.configs.last().expect("group is never empty")
    }
}

/// A rectangular grid of clocking parameters to enumerate.
///
/// # Examples
///
/// ```
/// use stm32_rcc::{ConfigSpace, Hertz};
///
/// let space = ConfigSpace::paper();
/// let groups = space.iso_frequency_groups();
/// // The paper's HFO ladder contains 216 MHz...
/// assert!(groups.iter().any(|g| g.sysclk == Hertz::mhz(216)));
/// // ...and every group is sorted coolest-VCO first.
/// for g in &groups {
///     for w in g.configs.windows(2) {
///         assert!(w[0].vco_output() <= w[1].vco_output());
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigSpace {
    hse_frequencies: Vec<Hertz>,
    pllm_values: Vec<u32>,
    plln_values: Vec<u32>,
    pllp_values: Vec<u32>,
}

impl ConfigSpace {
    /// Creates an empty space; use the builder methods to populate it.
    pub fn new() -> Self {
        ConfigSpace {
            hse_frequencies: Vec::new(),
            pllm_values: Vec::new(),
            plln_values: Vec::new(),
            pllp_values: vec![2],
        }
    }

    /// The exact grid explored in the paper: HSE 50 MHz, `PLLM ∈ {25,50}`,
    /// `PLLN ∈ {75,...,432}`, `PLLP = 2`.
    pub fn paper() -> Self {
        ConfigSpace {
            hse_frequencies: vec![Hertz::mhz(50)],
            pllm_values: PAPER_PLLM_VALUES.to_vec(),
            plln_values: PAPER_PLLN_VALUES.to_vec(),
            pllp_values: vec![2],
        }
    }

    /// A wider grid for Fig. 2-style iso-frequency studies: several HSE
    /// crystals, a denser divider set, and all `PLLP` values.
    ///
    /// Varying `PLLP` is what creates *iso-frequency, different-VCO*
    /// alternatives: the same SYSCLK reached through a higher `PLLP` needs a
    /// proportionally higher VCO frequency and therefore burns more power —
    /// the core observation of Fig. 2.
    pub fn wide() -> Self {
        ConfigSpace {
            hse_frequencies: vec![Hertz::mhz(16), Hertz::mhz(25), Hertz::mhz(50)],
            pllm_values: vec![8, 12, 16, 25, 50],
            plln_values: vec![50, 75, 100, 150, 168, 200, 216, 336, 432],
            pllp_values: vec![2, 4, 6, 8],
        }
    }

    /// Adds an HSE frequency to the grid.
    pub fn hse(&mut self, freq: Hertz) -> &mut Self {
        self.hse_frequencies.push(freq);
        self
    }

    /// Adds a `PLLM` candidate.
    pub fn pllm(&mut self, m: u32) -> &mut Self {
        self.pllm_values.push(m);
        self
    }

    /// Adds a `PLLN` candidate.
    pub fn plln(&mut self, n: u32) -> &mut Self {
        self.plln_values.push(n);
        self
    }

    /// Replaces the `PLLP` candidates (defaults to just 2).
    pub fn pllp_set(&mut self, values: &[u32]) -> &mut Self {
        self.pllp_values = values.to_vec();
        self
    }

    /// Enumerates every *valid* PLL configuration in the grid.
    ///
    /// Invalid combinations (VCO window, SYSCLK ceiling, ...) are silently
    /// skipped — exactly what firmware exploring the space would do.
    pub fn enumerate_pll(&self) -> Vec<PllConfig> {
        let mut out = Vec::new();
        for &hse in &self.hse_frequencies {
            for &m in &self.pllm_values {
                for &n in &self.plln_values {
                    for &p in &self.pllp_values {
                        if let Ok(cfg) = PllConfig::new(ClockSource::hse(hse), m, n, p) {
                            out.push(cfg);
                        }
                    }
                }
            }
        }
        out
    }

    /// Enumerates all SYSCLK configurations: each valid PLL config plus the
    /// direct-HSE options.
    pub fn enumerate(&self) -> Vec<SysclkConfig> {
        let mut out: Vec<SysclkConfig> = self
            .enumerate_pll()
            .into_iter()
            .map(SysclkConfig::Pll)
            .collect();
        for &hse in &self.hse_frequencies {
            let direct = SysclkConfig::HseDirect(hse);
            if direct.validate().is_ok() {
                out.push(direct);
            }
        }
        out
    }

    /// Groups valid PLL configurations by the SYSCLK they produce, each
    /// group sorted coolest-VCO first.
    pub fn iso_frequency_groups(&self) -> Vec<IsoFrequencyGroup> {
        let mut by_freq: BTreeMap<Hertz, Vec<PllConfig>> = BTreeMap::new();
        for cfg in self.enumerate_pll() {
            by_freq.entry(cfg.sysclk()).or_default().push(cfg);
        }
        by_freq
            .into_iter()
            .map(|(sysclk, mut configs)| {
                configs.sort_by_key(|c| (c.vco_output(), c.label_tuple()));
                IsoFrequencyGroup { sysclk, configs }
            })
            .collect()
    }

    /// The power-optimal (minimum-VCO) configuration for a target SYSCLK,
    /// if the grid can produce it.
    pub fn min_vco_config(&self, target: Hertz) -> Option<PllConfig> {
        self.iso_frequency_groups()
            .into_iter()
            .find(|g| g.sysclk == target)
            .map(|g| *g.coolest())
    }

    /// The distinct SYSCLK frequencies the grid can produce via the PLL,
    /// ascending.
    pub fn available_sysclks(&self) -> Vec<Hertz> {
        self.iso_frequency_groups()
            .into_iter()
            .map(|g| g.sysclk)
            .collect()
    }
}

impl Default for ConfigSpace {
    fn default() -> Self {
        ConfigSpace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_produces_expected_hfo_ladder() {
        let freqs = ConfigSpace::paper().available_sysclks();
        // PLLM=25 (VCO-in 2 MHz): sysclk = PLLN MHz for PLLN <= 216.
        // PLLM=50 (VCO-in 1 MHz): sysclk = PLLN/2 MHz where VCO >= 100 MHz.
        for expected in [75u64, 84, 100, 108, 150, 168, 216] {
            assert!(
                freqs.contains(&Hertz::mhz(expected)),
                "missing {expected} MHz in {freqs:?}"
            );
        }
        // PLLN=336/432 with PLLM=25 would exceed the 216 MHz SYSCLK ceiling
        // (and the VCO window): they must be skipped, not enumerated.
        assert!(!freqs.contains(&Hertz::mhz(336)));
        assert!(!freqs.contains(&Hertz::mhz(432)));
    }

    #[test]
    fn enumerate_only_valid_configs() {
        for cfg in ConfigSpace::wide().enumerate_pll() {
            assert!(cfg.validate().is_ok(), "invalid config leaked: {cfg}");
        }
    }

    #[test]
    fn iso_groups_share_frequency_and_sort_by_vco() {
        for group in ConfigSpace::wide().iso_frequency_groups() {
            assert!(!group.configs.is_empty());
            for cfg in &group.configs {
                assert_eq!(cfg.sysclk(), group.sysclk);
            }
            for w in group.configs.windows(2) {
                assert!(w[0].vco_output() <= w[1].vco_output());
            }
            assert!(group.coolest().vco_output() <= group.hottest().vco_output());
        }
    }

    #[test]
    fn iso_frequency_gap_exists_at_100_mhz() {
        // The Fig. 2 observation: the wide grid contains 100 MHz configs
        // with different VCO frequencies.
        let group = ConfigSpace::wide()
            .iso_frequency_groups()
            .into_iter()
            .find(|g| g.sysclk == Hertz::mhz(100))
            .expect("100 MHz reachable");
        assert!(
            group.hottest().vco_output() > group.coolest().vco_output(),
            "expected a VCO spread at 100 MHz"
        );
    }

    #[test]
    fn min_vco_config_picks_coolest() {
        let space = ConfigSpace::wide();
        let best = space.min_vco_config(Hertz::mhz(100)).unwrap();
        for cfg in space.enumerate_pll() {
            if cfg.sysclk() == Hertz::mhz(100) {
                assert!(best.vco_output() <= cfg.vco_output());
            }
        }
    }

    #[test]
    fn min_vco_config_none_for_unreachable() {
        assert_eq!(ConfigSpace::paper().min_vco_config(Hertz::mhz(123)), None);
    }

    #[test]
    fn enumerate_includes_direct_hse() {
        let cfgs = ConfigSpace::paper().enumerate();
        assert!(cfgs
            .iter()
            .any(|c| matches!(c, SysclkConfig::HseDirect(f) if *f == Hertz::mhz(50))));
    }

    #[test]
    fn builder_methods_extend_grid() {
        let mut space = ConfigSpace::new();
        space
            .hse(Hertz::mhz(50))
            .pllm(25)
            .plln(100)
            .pllp_set(&[2, 4]);
        let cfgs = space.enumerate_pll();
        // 50/25*100/2 = 100 MHz and 50/25*100/4 = 50 MHz.
        assert_eq!(cfgs.len(), 2);
    }

    #[test]
    fn empty_space_enumerates_nothing() {
        assert!(ConfigSpace::new().enumerate().is_empty());
        assert!(ConfigSpace::default().iso_frequency_groups().is_empty());
    }
}
