//! Behavioural model of the STM32F7 Reset and Clock Control (RCC) peripheral.
//!
//! This crate reproduces the part of the STM32F767 clocking system that the
//! paper *"Decoupled Access-Execute enabled DVFS for tinyML deployments on
//! STM32 microcontrollers"* (DATE 2024) relies on:
//!
//! * the **HSI** (16 MHz internal) and **HSE** (1–50 MHz external) clock
//!   sources,
//! * the **PLL** with its `PLLM` / `PLLN` / `PLLP` dividers and the datasheet
//!   validity constraints (VCO input/output ranges, SYSCLK ≤ 216 MHz),
//! * `SYSCLK` selection (Eq. 1 of the paper:
//!   `F_SYSCLK = F_{HSE,HSI} · PLLN / (PLLM · PLLP)`),
//! * the **flash wait-state** ladder that couples memory latency to the chosen
//!   frequency, and
//! * the **switching-cost** asymmetry the methodology exploits: re-locking the
//!   PLL costs ≈ 200 µs while toggling the SYSCLK mux to/from the HSE is
//!   nearly instant.
//!
//! # Examples
//!
//! ```
//! use stm32_rcc::{ClockSource, Hertz, PllConfig, SysclkConfig};
//!
//! # fn main() -> Result<(), stm32_rcc::RccError> {
//! // 216 MHz out of a 50 MHz crystal: 50 / 25 * 216 / 2 = 216 MHz.
//! let pll = PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 216, 2)?;
//! assert_eq!(pll.sysclk(), Hertz::mhz(216));
//!
//! let cfg = SysclkConfig::Pll(pll);
//! assert_eq!(cfg.sysclk(), Hertz::mhz(216));
//! # Ok(())
//! # }
//! ```

pub mod buses;
pub mod enumerate;
pub mod error;
pub mod flash;
pub mod hertz;
pub mod pll;
pub mod switching;
pub mod sysclk;

pub use buses::{pllq_for_usb, BusPrescalers, APB1_MAX, APB2_MAX, USB_CLOCK};
pub use enumerate::{ConfigSpace, IsoFrequencyGroup, PAPER_PLLM_VALUES, PAPER_PLLN_VALUES};
pub use error::RccError;
pub use flash::{flash_wait_states, FlashLatency, WaitStateLadder};
pub use hertz::Hertz;
pub use pll::PllConfig;
pub use switching::{SwitchCost, SwitchCostModel};
pub use sysclk::{ClockSource, SysclkConfig};

/// Maximum SYSCLK frequency of the STM32F767 (with over-drive enabled).
pub const MAX_SYSCLK: Hertz = Hertz::mhz(216);

/// Default HSI frequency of STM32F7 parts.
pub const HSI_FREQUENCY: Hertz = Hertz::mhz(16);

/// Lowest supported HSE crystal/clock frequency on the examined board.
pub const HSE_MIN: Hertz = Hertz::mhz(1);

/// Highest supported HSE crystal/clock frequency on the examined board.
pub const HSE_MAX: Hertz = Hertz::mhz(50);

/// The LFO (low-frequency operation) clock the paper fixes for memory-bound
/// segments: the HSE fed directly to SYSCLK at 50 MHz.
pub const LFO_HSE: Hertz = Hertz::mhz(50);
