//! The main PLL: dividers, VCO constraints, and Eq. 1 of the paper.

use std::fmt;

use crate::error::RccError;
use crate::hertz::Hertz;
use crate::sysclk::ClockSource;
use crate::MAX_SYSCLK;

/// Lower bound of the VCO reference (input) frequency window.
pub const VCO_INPUT_MIN: Hertz = Hertz::mhz(1);
/// Upper bound of the VCO reference (input) frequency window.
pub const VCO_INPUT_MAX: Hertz = Hertz::mhz(2);
/// Lower bound of the VCO output frequency window.
pub const VCO_OUTPUT_MIN: Hertz = Hertz::mhz(100);
/// Upper bound of the VCO output frequency window.
pub const VCO_OUTPUT_MAX: Hertz = Hertz::mhz(432);

/// A validated main-PLL configuration.
///
/// Implements Eq. 1 of the paper:
///
/// ```text
/// F_SYSCLK = F_{HSE,HSI} * PLLN / (PLLM * PLLP)
/// ```
///
/// with the STM32F7 datasheet windows enforced at construction:
/// `PLLM ∈ 2..=63`, `PLLN ∈ 50..=432`, `PLLP ∈ {2,4,6,8}`, VCO input within
/// 1–2 MHz, VCO output within 100–432 MHz, and SYSCLK ≤ 216 MHz.
///
/// Note the paper's Fig. 2 labels configurations as `{HSE, PLLM, PLLN}`
/// tuples with `PLLP = 2` fixed to its minimum, "since for the same
/// F_SYSCLK, selecting a higher PLLP value leads to a higher required VCO
/// frequency and, thus, higher power consumption".
///
/// # Examples
///
/// ```
/// use stm32_rcc::{ClockSource, Hertz, PllConfig};
///
/// # fn main() -> Result<(), stm32_rcc::RccError> {
/// let pll = PllConfig::new(ClockSource::hse(Hertz::mhz(16)), 8, 100, 2)?;
/// assert_eq!(pll.vco_input(), Hertz::mhz(2));
/// assert_eq!(pll.vco_output(), Hertz::mhz(200));
/// assert_eq!(pll.sysclk(), Hertz::mhz(100));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PllConfig {
    source: ClockSource,
    pllm: u32,
    plln: u32,
    pllp: u32,
}

impl PllConfig {
    /// Builds and validates a PLL configuration.
    ///
    /// # Errors
    ///
    /// Returns the specific [`RccError`] for the first violated datasheet
    /// constraint (divider register ranges, VCO windows, SYSCLK ceiling, or
    /// an invalid source).
    pub fn new(source: ClockSource, pllm: u32, plln: u32, pllp: u32) -> Result<Self, RccError> {
        source.validate()?;
        if !(2..=63).contains(&pllm) {
            return Err(RccError::PllmOutOfRange(pllm));
        }
        if !(50..=432).contains(&plln) {
            return Err(RccError::PllnOutOfRange(plln));
        }
        if !matches!(pllp, 2 | 4 | 6 | 8) {
            return Err(RccError::PllpInvalid(pllp));
        }
        let cfg = PllConfig {
            source,
            pllm,
            plln,
            pllp,
        };
        let vco_in = cfg.vco_input();
        if vco_in < VCO_INPUT_MIN || vco_in > VCO_INPUT_MAX {
            return Err(RccError::VcoInputOutOfRange(vco_in));
        }
        let vco_out = cfg.vco_output();
        if vco_out < VCO_OUTPUT_MIN || vco_out > VCO_OUTPUT_MAX {
            return Err(RccError::VcoOutputOutOfRange(vco_out));
        }
        let sysclk = cfg.sysclk();
        if sysclk > MAX_SYSCLK {
            return Err(RccError::SysclkTooHigh(sysclk));
        }
        Ok(cfg)
    }

    /// Builds a configuration without validation.
    ///
    /// Useful for exploring *why* a configuration is invalid (e.g. plotting
    /// the rejected corner of the design space). All getters still work;
    /// [`PllConfig::validate`] reports the violation.
    pub fn new_unchecked(source: ClockSource, pllm: u32, plln: u32, pllp: u32) -> Self {
        PllConfig {
            source,
            pllm,
            plln,
            pllp,
        }
    }

    /// Re-checks all datasheet constraints.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PllConfig::new`].
    pub fn validate(&self) -> Result<(), RccError> {
        PllConfig::new(self.source, self.pllm, self.plln, self.pllp).map(|_| ())
    }

    /// The PLL input clock source.
    pub const fn source(&self) -> ClockSource {
        self.source
    }

    /// The `PLLM` input divider.
    pub const fn pllm(&self) -> u32 {
        self.pllm
    }

    /// The `PLLN` VCO multiplier.
    pub const fn plln(&self) -> u32 {
        self.plln
    }

    /// The `PLLP` output divider.
    pub const fn pllp(&self) -> u32 {
        self.pllp
    }

    /// Frequency entering the VCO phase comparator: `f_src / PLLM`.
    pub fn vco_input(&self) -> Hertz {
        self.source.frequency() / u64::from(self.pllm)
    }

    /// VCO output frequency: `f_src · PLLN / PLLM`.
    ///
    /// This is the frequency that dominates PLL power draw: iso-SYSCLK
    /// configurations with a higher VCO output consume measurably more power
    /// (Fig. 2 of the paper).
    pub fn vco_output(&self) -> Hertz {
        self.source.frequency() * u64::from(self.plln) / u64::from(self.pllm)
    }

    /// The SYSCLK this PLL produces (Eq. 1): `vco_output / PLLP`.
    pub fn sysclk(&self) -> Hertz {
        self.vco_output() / u64::from(self.pllp)
    }

    /// Returns the `{HSE, PLLM, PLLN}` tuple the paper uses to label
    /// configurations in Fig. 2 (source frequency in MHz).
    pub fn label_tuple(&self) -> (u64, u32, u32) {
        (
            self.source.frequency().as_u64() / 1_000_000,
            self.pllm,
            self.plln,
        )
    }
}

impl fmt::Display for PllConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PLL({src} /{m} x{n} /{p} -> {out})",
            src = self.source,
            m = self.pllm,
            n = self.plln,
            p = self.pllp,
            out = self.sysclk()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hse(mhz: u64) -> ClockSource {
        ClockSource::hse(Hertz::mhz(mhz))
    }

    #[test]
    fn eq1_paper_examples() {
        // {50, 25, 216} with PLLP=2: 50/25 = 2 MHz VCO-in, x216 = 432 VCO-out, /2 = 216 MHz.
        let a = PllConfig::new(hse(50), 25, 216, 2).unwrap();
        assert_eq!(a.sysclk(), Hertz::mhz(216));
        assert_eq!(a.vco_output(), Hertz::mhz(432));

        // {16, 8, 100}: 16/8 = 2 MHz, x100 = 200 MHz, /2 = 100 MHz.
        let b = PllConfig::new(hse(16), 8, 100, 2).unwrap();
        assert_eq!(b.sysclk(), Hertz::mhz(100));
        assert_eq!(b.vco_output(), Hertz::mhz(200));

        // {50, 25, 100} and {50, 50, 200} are iso-frequency *and* iso-VCO.
        let c = PllConfig::new(hse(50), 25, 100, 2).unwrap();
        let d = PllConfig::new(hse(50), 50, 200, 2).unwrap();
        assert_eq!(c.sysclk(), d.sysclk());
        assert_eq!(c.vco_output(), d.vco_output());
        assert_eq!(c.sysclk(), Hertz::mhz(100));
    }

    #[test]
    fn iso_frequency_different_vco() {
        // Both produce 100 MHz but with different VCO frequencies -> the
        // power gap of Fig. 2.
        let hot = PllConfig::new(hse(50), 25, 200, 4).unwrap(); // VCO 400 MHz
        let cool = PllConfig::new(hse(16), 8, 100, 2).unwrap(); // VCO 200 MHz
        assert_eq!(hot.sysclk(), cool.sysclk());
        assert!(hot.vco_output() > cool.vco_output());
    }

    #[test]
    fn pllm_range_enforced() {
        assert_eq!(
            PllConfig::new(hse(50), 1, 100, 2).unwrap_err(),
            RccError::PllmOutOfRange(1)
        );
        assert_eq!(
            PllConfig::new(hse(50), 64, 100, 2).unwrap_err(),
            RccError::PllmOutOfRange(64)
        );
    }

    #[test]
    fn plln_range_enforced() {
        assert_eq!(
            PllConfig::new(hse(50), 25, 49, 2).unwrap_err(),
            RccError::PllnOutOfRange(49)
        );
        assert_eq!(
            PllConfig::new(hse(50), 25, 433, 2).unwrap_err(),
            RccError::PllnOutOfRange(433)
        );
    }

    #[test]
    fn pllp_values_enforced() {
        for bad in [0, 1, 3, 5, 7, 9] {
            assert_eq!(
                PllConfig::new(hse(50), 25, 100, bad).unwrap_err(),
                RccError::PllpInvalid(bad)
            );
        }
        for good in [2, 4, 6, 8] {
            // Pick PLLN so the VCO windows hold: VCO-in = 2 MHz, choose
            // VCO-out = 200 MHz -> sysclk 100/50/33/25 MHz.
            assert!(PllConfig::new(hse(50), 25, 100, good).is_ok());
        }
    }

    #[test]
    fn vco_input_window_enforced() {
        // 50 / 60 < 1 MHz.
        assert!(matches!(
            PllConfig::new(hse(50), 60, 200, 2).unwrap_err(),
            RccError::VcoInputOutOfRange(_)
        ));
        // 50 / 20 = 2.5 MHz > 2 MHz.
        assert!(matches!(
            PllConfig::new(hse(50), 20, 100, 2).unwrap_err(),
            RccError::VcoInputOutOfRange(_)
        ));
    }

    #[test]
    fn vco_output_window_enforced() {
        // 2 MHz x 50 = 100 MHz: exactly the lower edge is fine.
        assert!(PllConfig::new(hse(50), 25, 50, 2).is_ok());
        // 1 MHz x 50 = 50 MHz: below the window.
        assert!(matches!(
            PllConfig::new(hse(50), 50, 50, 2).unwrap_err(),
            RccError::VcoOutputOutOfRange(_)
        ));
        // 2 MHz x 432 = 864 MHz... PLLN caps at 432 so use m=25 n=432 -> 864.
        assert!(matches!(
            PllConfig::new(hse(50), 25, 432, 4).unwrap_err(),
            RccError::VcoOutputOutOfRange(_)
        ));
    }

    #[test]
    fn sysclk_ceiling_enforced() {
        // VCO 432 via {50,25,216}, PLLP=2 -> 216 MHz: allowed.
        assert!(PllConfig::new(hse(50), 25, 216, 2).is_ok());
        // 2 MHz x 220 / 2 = 220 MHz: above the ceiling (VCO 440 also bad, so
        // craft one that only breaks the ceiling: VCO 432 is max -> sysclk
        // via PLLP=2 is 216; a 218-MHz sysclk needs VCO 436 which is already
        // out of window, so the ceiling is only reachable via HSI-like math).
        // Use 1.92 MHz input: 48/25=1.92, x225=432 VCO, /2=216 OK.
        assert!(PllConfig::new(hse(48), 25, 225, 2).is_ok());
    }

    #[test]
    fn hsi_source_supported() {
        let pll = PllConfig::new(ClockSource::Hsi, 8, 100, 2).unwrap();
        assert_eq!(pll.sysclk(), Hertz::mhz(100));
        assert_eq!(pll.vco_input(), Hertz::mhz(2));
    }

    #[test]
    fn label_tuple_matches_paper_notation() {
        let pll = PllConfig::new(hse(50), 25, 216, 2).unwrap();
        assert_eq!(pll.label_tuple(), (50, 25, 216));
    }

    #[test]
    fn unchecked_then_validate() {
        let bad = PllConfig::new_unchecked(hse(50), 20, 100, 2);
        assert!(bad.validate().is_err());
        let good = PllConfig::new_unchecked(hse(50), 25, 100, 2);
        assert!(good.validate().is_ok());
    }

    #[test]
    fn display_mentions_all_dividers() {
        let pll = PllConfig::new(hse(50), 25, 216, 2).unwrap();
        let s = pll.to_string();
        assert!(s.contains("25") && s.contains("216") && s.contains("216 MHz"));
    }
}
