//! Error type for clock-tree configuration.

use std::error::Error;
use std::fmt;

use crate::hertz::Hertz;

/// Errors produced when validating a clock-tree configuration.
///
/// Every variant corresponds to a datasheet constraint of the STM32F767 RCC
/// (reference manual RM0410). The contained values report what was requested
/// so the message is actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RccError {
    /// `PLLM` divider outside its 2–63 register range.
    PllmOutOfRange(u32),
    /// `PLLN` multiplier outside its 50–432 register range.
    PllnOutOfRange(u32),
    /// `PLLP` divider is not one of {2, 4, 6, 8}.
    PllpInvalid(u32),
    /// The PLL input (VCO reference) frequency left the 1–2 MHz window.
    VcoInputOutOfRange(Hertz),
    /// The VCO output frequency left the 100–432 MHz window.
    VcoOutputOutOfRange(Hertz),
    /// The resulting SYSCLK exceeds the device maximum (216 MHz).
    SysclkTooHigh(Hertz),
    /// The HSE source frequency is outside the board's 1–50 MHz range.
    HseOutOfRange(Hertz),
    /// A clock source of 0 Hz was supplied.
    ZeroSourceFrequency,
    /// A bus prescaler value outside its register encoding.
    PrescalerInvalid {
        /// Which bus ("AHB", "APB1", "APB2").
        bus: &'static str,
        /// The rejected divider value.
        value: u32,
    },
    /// A derived bus clock exceeds its device limit.
    BusClockTooHigh {
        /// Which bus.
        bus: &'static str,
        /// The derived clock.
        clock: Hertz,
        /// The device limit for that bus.
        max: Hertz,
    },
}

impl fmt::Display for RccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RccError::PllmOutOfRange(m) => {
                write!(f, "PLLM divider {m} outside the valid range 2..=63")
            }
            RccError::PllnOutOfRange(n) => {
                write!(f, "PLLN multiplier {n} outside the valid range 50..=432")
            }
            RccError::PllpInvalid(p) => {
                write!(f, "PLLP divider {p} is not one of 2, 4, 6, 8")
            }
            RccError::VcoInputOutOfRange(hz) => {
                write!(f, "VCO input frequency {hz} outside the 1-2 MHz window")
            }
            RccError::VcoOutputOutOfRange(hz) => {
                write!(
                    f,
                    "VCO output frequency {hz} outside the 100-432 MHz window"
                )
            }
            RccError::SysclkTooHigh(hz) => {
                write!(f, "SYSCLK {hz} exceeds the 216 MHz device maximum")
            }
            RccError::HseOutOfRange(hz) => {
                write!(f, "HSE frequency {hz} outside the board's 1-50 MHz range")
            }
            RccError::ZeroSourceFrequency => write!(f, "clock source frequency is zero"),
            RccError::PrescalerInvalid { bus, value } => {
                write!(f, "{bus} prescaler {value} is not register-encodable")
            }
            RccError::BusClockTooHigh { bus, clock, max } => {
                write!(f, "{bus} clock {clock} exceeds the {max} limit")
            }
        }
    }
}

impl Error for RccError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let msg = RccError::PllmOutOfRange(99).to_string();
        assert!(msg.contains("99"));
        assert!(msg.contains("2..=63"));

        let msg = RccError::VcoOutputOutOfRange(Hertz::mhz(500)).to_string();
        assert!(msg.contains("500 MHz"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<RccError>();
    }
}
