//! AHB/APB bus prescalers and the PLLQ/USB constraint.
//!
//! The RCC "provides a wide range of clocks and clock sources which cater to
//! various system requirements, e.g., peripheral Bus and UART clocks"
//! (paper Sec. II). DVFS on SYSCLK must keep the derived bus clocks legal:
//! APB1 tops out at 54 MHz and APB2 at 108 MHz on the F767, and USB needs
//! exactly 48 MHz from the PLL's Q divider. This module models those
//! derived-clock constraints so a deployment can check that a chosen SYSCLK
//! ladder never breaks a peripheral.

use crate::error::RccError;
use crate::hertz::Hertz;
use crate::pll::PllConfig;

/// Maximum APB1 (low-speed peripheral bus) clock on the STM32F767.
pub const APB1_MAX: Hertz = Hertz::mhz(54);
/// Maximum APB2 (high-speed peripheral bus) clock on the STM32F767.
pub const APB2_MAX: Hertz = Hertz::mhz(108);
/// The USB full-speed PHY clock requirement.
pub const USB_CLOCK: Hertz = Hertz::mhz(48);

/// AHB/APB prescaler configuration.
///
/// ```
/// use stm32_rcc::{BusPrescalers, Hertz};
///
/// # fn main() -> Result<(), stm32_rcc::RccError> {
/// let buses = BusPrescalers::new(1, 4, 2)?;
/// assert_eq!(buses.apb1_clock(Hertz::mhz(216)), Hertz::mhz(54));
/// assert_eq!(buses.apb2_clock(Hertz::mhz(216)), Hertz::mhz(108));
/// assert!(buses.validate_at(Hertz::mhz(216)).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusPrescalers {
    ahb: u32,
    apb1: u32,
    apb2: u32,
}

impl BusPrescalers {
    /// Valid AHB divider values (HPRE register).
    pub const AHB_VALUES: [u32; 9] = [1, 2, 4, 8, 16, 64, 128, 256, 512];
    /// Valid APB divider values (PPRE registers).
    pub const APB_VALUES: [u32; 5] = [1, 2, 4, 8, 16];

    /// Builds a prescaler set.
    ///
    /// # Errors
    ///
    /// Returns [`RccError::PrescalerInvalid`] when a divider is not one of
    /// the register-encodable values ([`BusPrescalers::AHB_VALUES`] /
    /// [`BusPrescalers::APB_VALUES`]).
    pub fn new(ahb: u32, apb1: u32, apb2: u32) -> Result<Self, RccError> {
        if !Self::AHB_VALUES.contains(&ahb) {
            return Err(RccError::PrescalerInvalid {
                bus: "AHB",
                value: ahb,
            });
        }
        if !Self::APB_VALUES.contains(&apb1) {
            return Err(RccError::PrescalerInvalid {
                bus: "APB1",
                value: apb1,
            });
        }
        if !Self::APB_VALUES.contains(&apb2) {
            return Err(RccError::PrescalerInvalid {
                bus: "APB2",
                value: apb2,
            });
        }
        Ok(BusPrescalers { ahb, apb1, apb2 })
    }

    /// The configuration the paper's firmware uses at 216 MHz: AHB /1,
    /// APB1 /4 (54 MHz), APB2 /2 (108 MHz).
    pub fn f767_default() -> Self {
        BusPrescalers {
            ahb: 1,
            apb1: 4,
            apb2: 2,
        }
    }

    /// AHB (HCLK) frequency at a given SYSCLK.
    pub fn ahb_clock(&self, sysclk: Hertz) -> Hertz {
        sysclk / u64::from(self.ahb)
    }

    /// APB1 frequency at a given SYSCLK.
    pub fn apb1_clock(&self, sysclk: Hertz) -> Hertz {
        self.ahb_clock(sysclk) / u64::from(self.apb1)
    }

    /// APB2 frequency at a given SYSCLK.
    pub fn apb2_clock(&self, sysclk: Hertz) -> Hertz {
        self.ahb_clock(sysclk) / u64::from(self.apb2)
    }

    /// Checks the derived clocks against the device limits at `sysclk`.
    ///
    /// # Errors
    ///
    /// Returns [`RccError::BusClockTooHigh`] naming the offending bus.
    pub fn validate_at(&self, sysclk: Hertz) -> Result<(), RccError> {
        if self.apb1_clock(sysclk) > APB1_MAX {
            return Err(RccError::BusClockTooHigh {
                bus: "APB1",
                clock: self.apb1_clock(sysclk),
                max: APB1_MAX,
            });
        }
        if self.apb2_clock(sysclk) > APB2_MAX {
            return Err(RccError::BusClockTooHigh {
                bus: "APB2",
                clock: self.apb2_clock(sysclk),
                max: APB2_MAX,
            });
        }
        Ok(())
    }

    /// The tightest (fastest-bus) prescaler set that is legal at `sysclk`.
    pub fn fastest_legal(sysclk: Hertz) -> Self {
        for &apb1 in &Self::APB_VALUES {
            for &apb2 in &Self::APB_VALUES {
                let candidate = BusPrescalers { ahb: 1, apb1, apb2 };
                if candidate.validate_at(sysclk).is_ok() {
                    return candidate;
                }
            }
        }
        // /16 on both APBs is legal at any SYSCLK <= 216 MHz.
        BusPrescalers {
            ahb: 1,
            apb1: 16,
            apb2: 16,
        }
    }
}

impl Default for BusPrescalers {
    fn default() -> Self {
        BusPrescalers::f767_default()
    }
}

/// The PLLQ divider (2–15) that produces the 48 MHz USB clock from this
/// PLL's VCO, if one exists.
///
/// ```
/// use stm32_rcc::{pllq_for_usb, ClockSource, Hertz, PllConfig};
///
/// # fn main() -> Result<(), stm32_rcc::RccError> {
/// // VCO 432 MHz = 9 x 48 MHz.
/// let pll = PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 216, 2)?;
/// assert_eq!(pllq_for_usb(&pll), Some(9));
/// # Ok(())
/// # }
/// ```
pub fn pllq_for_usb(pll: &PllConfig) -> Option<u32> {
    let vco = pll.vco_output().as_u64();
    (2u32..=15).find(|&q| vco == u64::from(q) * USB_CLOCK.as_u64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sysclk::ClockSource;

    #[test]
    fn default_is_legal_at_216() {
        let b = BusPrescalers::f767_default();
        assert!(b.validate_at(Hertz::mhz(216)).is_ok());
        assert_eq!(b.apb1_clock(Hertz::mhz(216)), Hertz::mhz(54));
        assert_eq!(b.apb2_clock(Hertz::mhz(216)), Hertz::mhz(108));
        assert_eq!(b.ahb_clock(Hertz::mhz(216)), Hertz::mhz(216));
    }

    #[test]
    fn undivided_apb1_illegal_at_high_sysclk() {
        let b = BusPrescalers::new(1, 1, 1).unwrap();
        let err = b.validate_at(Hertz::mhz(216)).unwrap_err();
        assert!(matches!(err, RccError::BusClockTooHigh { bus: "APB1", .. }));
        // But fine at LFO.
        assert!(b.validate_at(Hertz::mhz(50)).is_ok());
    }

    #[test]
    fn invalid_divider_values_rejected() {
        assert!(matches!(
            BusPrescalers::new(3, 1, 1),
            Err(RccError::PrescalerInvalid { bus: "AHB", .. })
        ));
        assert!(matches!(
            BusPrescalers::new(1, 5, 1),
            Err(RccError::PrescalerInvalid { bus: "APB1", .. })
        ));
        assert!(matches!(
            BusPrescalers::new(1, 1, 32),
            Err(RccError::PrescalerInvalid { bus: "APB2", .. })
        ));
    }

    #[test]
    fn fastest_legal_is_legal_everywhere_on_the_ladder() {
        for mhz in [50u64, 75, 100, 108, 150, 168, 216] {
            let sysclk = Hertz::mhz(mhz);
            let b = BusPrescalers::fastest_legal(sysclk);
            assert!(b.validate_at(sysclk).is_ok(), "illegal at {mhz} MHz");
        }
        // At 50 MHz no division is needed at all.
        assert_eq!(
            BusPrescalers::fastest_legal(Hertz::mhz(50)),
            BusPrescalers::new(1, 1, 1).unwrap()
        );
    }

    #[test]
    fn usb_divider_found_only_for_multiples_of_48() {
        let usb_capable = PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 216, 2).unwrap(); // VCO 432
        assert_eq!(pllq_for_usb(&usb_capable), Some(9));
        let not_capable = PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 150, 2).unwrap(); // VCO 300
        assert_eq!(pllq_for_usb(&not_capable), None);
    }
}
