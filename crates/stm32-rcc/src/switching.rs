//! Clock-switch cost model (Sec. II-A of the paper).
//!
//! Re-programming the PLL dividers forces the loop to re-lock, which the
//! paper measures at ≈ 200 µs per switch. Moving the SYSCLK mux between the
//! HSE and an *already locked* PLL, by contrast, is "almost instant" thanks
//! to the direct wiring of the HSE to the mux. The DAE methodology leans on
//! exactly this asymmetry: LFO (HSE direct) ↔ HFO (PLL) toggles inside a
//! layer are cheap as long as the HFO PLL parameters stay fixed.

use std::fmt;

use crate::sysclk::SysclkConfig;

/// The classified cost of one SYSCLK transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwitchCost {
    /// No transition: source and target configurations are identical.
    Free,
    /// SYSCLK mux toggle only (e.g. PLL ↔ HSE with unchanged PLL dividers).
    MuxToggle(f64),
    /// PLL divider change: the loop must re-lock.
    PllRelock(f64),
}

impl SwitchCost {
    /// The cost in seconds.
    pub fn seconds(self) -> f64 {
        match self {
            SwitchCost::Free => 0.0,
            SwitchCost::MuxToggle(s) | SwitchCost::PllRelock(s) => s,
        }
    }
}

impl fmt::Display for SwitchCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchCost::Free => write!(f, "free"),
            SwitchCost::MuxToggle(s) => write!(f, "mux toggle ({:.2} µs)", s * 1e6),
            SwitchCost::PllRelock(s) => write!(f, "PLL re-lock ({:.1} µs)", s * 1e6),
        }
    }
}

/// Parametric switching-cost model.
///
/// Defaults follow the paper's measurements: 200 µs to re-lock the PLL and
/// ≈ 1 µs (a few register writes plus mux settle time) for a direct mux
/// toggle. Both are exposed so that the sensitivity ablation can sweep them.
///
/// # Examples
///
/// ```
/// use stm32_rcc::{ClockSource, Hertz, PllConfig, SwitchCostModel, SysclkConfig};
///
/// # fn main() -> Result<(), stm32_rcc::RccError> {
/// let model = SwitchCostModel::default();
/// let lfo = SysclkConfig::hse_direct(Hertz::mhz(50));
/// let hfo = SysclkConfig::Pll(PllConfig::new(
///     ClockSource::hse(Hertz::mhz(50)), 25, 216, 2)?);
///
/// // HFO -> LFO keeps the PLL locked: cheap.
/// assert!(model.cost(&hfo, &lfo).seconds() < 10e-6);
/// // LFO -> same HFO: also cheap (PLL dividers unchanged).
/// assert!(model.cost(&lfo, &hfo).seconds() < 10e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchCostModel {
    pll_relock_secs: f64,
    mux_toggle_secs: f64,
}

impl SwitchCostModel {
    /// PLL re-lock time measured in the paper.
    pub const DEFAULT_PLL_RELOCK: f64 = 200e-6;
    /// Mux-toggle time ("almost instant" in the paper; a conservative 1 µs).
    pub const DEFAULT_MUX_TOGGLE: f64 = 1e-6;

    /// Builds a model with explicit costs (seconds).
    ///
    /// # Panics
    ///
    /// Panics if either cost is negative or non-finite.
    pub fn new(pll_relock_secs: f64, mux_toggle_secs: f64) -> Self {
        assert!(
            pll_relock_secs.is_finite() && pll_relock_secs >= 0.0,
            "PLL re-lock cost must be a non-negative finite time"
        );
        assert!(
            mux_toggle_secs.is_finite() && mux_toggle_secs >= 0.0,
            "mux toggle cost must be a non-negative finite time"
        );
        SwitchCostModel {
            pll_relock_secs,
            mux_toggle_secs,
        }
    }

    /// The configured PLL re-lock penalty in seconds.
    pub fn pll_relock_secs(&self) -> f64 {
        self.pll_relock_secs
    }

    /// The configured mux-toggle penalty in seconds.
    pub fn mux_toggle_secs(&self) -> f64 {
        self.mux_toggle_secs
    }

    /// Classifies and prices the transition `from → to`.
    ///
    /// Rules, mirroring the hardware:
    ///
    /// * identical configurations are free;
    /// * any transition that changes the PLL dividers (including turning the
    ///   PLL on from scratch with new parameters) pays the re-lock penalty;
    /// * PLL → direct source, direct → direct, and direct → *same* PLL all
    ///   pay only the mux toggle, because the PLL stays locked in the
    ///   background while SYSCLK runs off the HSE (this is exactly the
    ///   LFO/HFO trick of the paper).
    pub fn cost(&self, from: &SysclkConfig, to: &SysclkConfig) -> SwitchCost {
        if from == to {
            return SwitchCost::Free;
        }
        match (from, to) {
            // Entering a PLL configuration: if we come from the *same* PLL
            // parameters (only possible if from==to, handled above) it is
            // free; from a direct source we assume the PLL was left locked
            // with these dividers only when the previous PLL config matches.
            // The model is memory-less, so the caller encodes "PLL kept warm"
            // by alternating between a fixed Pll(cfg) and a direct source;
            // any *change* of PLL dividers is priced as a re-lock.
            (SysclkConfig::Pll(a), SysclkConfig::Pll(b)) => {
                if a == b {
                    SwitchCost::Free
                } else {
                    SwitchCost::PllRelock(self.pll_relock_secs)
                }
            }
            (_, SysclkConfig::Pll(_)) => {
                // Direct -> PLL. The warm-PLL assumption (paper Sec. III-B):
                // LFO segments run with the HFO PLL still locked, so hopping
                // back onto it is a mux toggle.
                SwitchCost::MuxToggle(self.mux_toggle_secs)
            }
            (_, _) => SwitchCost::MuxToggle(self.mux_toggle_secs),
        }
    }

    /// Prices a *cold* entry into a PLL configuration (PLL currently
    /// unlocked or locked with different dividers).
    pub fn cold_pll_entry(&self) -> SwitchCost {
        SwitchCost::PllRelock(self.pll_relock_secs)
    }
}

impl Default for SwitchCostModel {
    fn default() -> Self {
        SwitchCostModel::new(Self::DEFAULT_PLL_RELOCK, Self::DEFAULT_MUX_TOGGLE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hertz::Hertz;
    use crate::pll::PllConfig;
    use crate::sysclk::ClockSource;

    fn hfo(n: u32) -> SysclkConfig {
        SysclkConfig::Pll(PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, n, 2).unwrap())
    }

    fn lfo() -> SysclkConfig {
        SysclkConfig::hse_direct(Hertz::mhz(50))
    }

    #[test]
    fn identical_is_free() {
        let m = SwitchCostModel::default();
        assert_eq!(m.cost(&lfo(), &lfo()), SwitchCost::Free);
        assert_eq!(m.cost(&hfo(216), &hfo(216)), SwitchCost::Free);
    }

    #[test]
    fn pll_divider_change_relocks() {
        let m = SwitchCostModel::default();
        match m.cost(&hfo(216), &hfo(100)) {
            SwitchCost::PllRelock(s) => assert_eq!(s, 200e-6),
            other => panic!("expected re-lock, got {other}"),
        }
    }

    #[test]
    fn hfo_lfo_round_trip_is_cheap() {
        let m = SwitchCostModel::default();
        let down = m.cost(&hfo(216), &lfo());
        let up = m.cost(&lfo(), &hfo(216));
        assert!(matches!(down, SwitchCost::MuxToggle(_)));
        assert!(matches!(up, SwitchCost::MuxToggle(_)));
        assert!(down.seconds() + up.seconds() < 0.1 * 200e-6);
    }

    #[test]
    fn direct_to_direct_is_mux() {
        let m = SwitchCostModel::default();
        let hsi = SysclkConfig::HsiDirect;
        assert!(matches!(m.cost(&lfo(), &hsi), SwitchCost::MuxToggle(_)));
    }

    #[test]
    fn custom_costs_respected() {
        let m = SwitchCostModel::new(500e-6, 0.0);
        assert_eq!(m.cost(&hfo(216), &hfo(100)).seconds(), 500e-6);
        assert_eq!(m.cost(&hfo(216), &lfo()).seconds(), 0.0);
        assert_eq!(m.cold_pll_entry().seconds(), 500e-6);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_rejected() {
        let _ = SwitchCostModel::new(-1.0, 0.0);
    }

    #[test]
    fn display_is_informative() {
        let m = SwitchCostModel::default();
        assert!(m.cost(&hfo(216), &hfo(100)).to_string().contains("200"));
        assert_eq!(SwitchCost::Free.to_string(), "free");
    }
}
