//! Frequency newtype used across the clock tree model.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A frequency in hertz.
///
/// `Hertz` is a thin `u64` newtype so that frequencies cannot be confused
/// with cycle counts or divider values. Construction helpers exist for the
/// common units:
///
/// ```
/// use stm32_rcc::Hertz;
///
/// assert_eq!(Hertz::mhz(216).as_u64(), 216_000_000);
/// assert_eq!(Hertz::khz(50).as_u64(), 50_000);
/// assert_eq!(Hertz::mhz(1), Hertz::khz(1000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hertz(u64);

impl Hertz {
    /// Creates a frequency from raw hertz.
    pub const fn new(hz: u64) -> Self {
        Hertz(hz)
    }

    /// Creates a frequency from kilohertz.
    pub const fn khz(khz: u64) -> Self {
        Hertz(khz * 1_000)
    }

    /// Creates a frequency from megahertz.
    pub const fn mhz(mhz: u64) -> Self {
        Hertz(mhz * 1_000_000)
    }

    /// Returns the raw hertz value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the frequency in (possibly fractional) megahertz.
    pub fn as_mhz_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the frequency as `f64` hertz, convenient for analytic models.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Duration of one clock period in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn period_secs(self) -> f64 {
        assert!(self.0 != 0, "period of a 0 Hz clock is undefined");
        1.0 / self.0 as f64
    }

    /// Converts a cycle count at this frequency into seconds.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn cycles_to_secs(self, cycles: u64) -> f64 {
        assert!(self.0 != 0, "cannot convert cycles at 0 Hz");
        cycles as f64 / self.0 as f64
    }

    /// Whether this frequency is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating checked multiply by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> Self {
        Hertz(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{} MHz", self.0 / 1_000_000)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{} kHz", self.0 / 1_000)
        } else {
            write!(f, "{} Hz", self.0)
        }
    }
}

impl From<u64> for Hertz {
    fn from(hz: u64) -> Self {
        Hertz(hz)
    }
}

impl From<Hertz> for u64 {
    fn from(hz: Hertz) -> Self {
        hz.0
    }
}

impl Add for Hertz {
    type Output = Hertz;
    fn add(self, rhs: Hertz) -> Hertz {
        Hertz(self.0 + rhs.0)
    }
}

impl Sub for Hertz {
    type Output = Hertz;
    fn sub(self, rhs: Hertz) -> Hertz {
        Hertz(self.0 - rhs.0)
    }
}

impl Mul<u64> for Hertz {
    type Output = Hertz;
    fn mul(self, rhs: u64) -> Hertz {
        Hertz(self.0 * rhs)
    }
}

impl Div<u64> for Hertz {
    type Output = Hertz;
    fn div(self, rhs: u64) -> Hertz {
        Hertz(self.0 / rhs)
    }
}

impl Div<Hertz> for Hertz {
    /// Ratio between two frequencies (integer division).
    type Output = u64;
    fn div(self, rhs: Hertz) -> u64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Hertz::new(1_000_000), Hertz::mhz(1));
        assert_eq!(Hertz::khz(1_000), Hertz::mhz(1));
        assert_eq!(Hertz::new(0), Hertz::default());
    }

    #[test]
    fn display_picks_best_unit() {
        assert_eq!(Hertz::mhz(216).to_string(), "216 MHz");
        assert_eq!(Hertz::khz(50).to_string(), "50 kHz");
        assert_eq!(Hertz::new(123).to_string(), "123 Hz");
        assert_eq!(Hertz::new(1_500_000).to_string(), "1500 kHz");
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Hertz::mhz(50) * 4, Hertz::mhz(200));
        assert_eq!(Hertz::mhz(200) / 4, Hertz::mhz(50));
        assert_eq!(Hertz::mhz(200) / Hertz::mhz(50), 4);
        assert_eq!(Hertz::mhz(3) + Hertz::mhz(2), Hertz::mhz(5));
        assert_eq!(Hertz::mhz(3) - Hertz::mhz(2), Hertz::mhz(1));
    }

    #[test]
    fn period_and_cycles() {
        let f = Hertz::mhz(100);
        assert!((f.period_secs() - 1e-8).abs() < 1e-20);
        assert!((f.cycles_to_secs(100_000_000) - 1.0).abs() < 1e-12);
        assert_eq!(f.cycles_to_secs(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "0 Hz")]
    fn zero_period_panics() {
        let _ = Hertz::new(0).period_secs();
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Hertz::mhz(75) < Hertz::mhz(100));
        assert!(Hertz::khz(999) < Hertz::mhz(1));
    }

    #[test]
    fn mhz_round_trip() {
        assert_eq!(Hertz::mhz(216).as_mhz_f64(), 216.0);
        assert_eq!(Hertz::khz(500).as_mhz_f64(), 0.5);
    }
}
