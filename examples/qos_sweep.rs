//! QoS sweep study: how the energy/latency trade-off moves as the latency
//! budget relaxes from 5% to 100% slack, for all three models.
//!
//! Run with: `cargo run --release --example qos_sweep`

use dae_dvfs::{FrequencyMap, Planner, Stm32F767Target};
use tinynn::models::paper_models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for model in paper_models() {
        // The planner compiles schedules and runs the DSE once; the seven
        // slack levels below only pay the (cheap) solver + replay.
        let planner = Planner::for_target(Stm32F767Target::paper(), &model)?;
        println!("\n{}: QoS slack sweep", model.name);
        println!(
            "{:>7} | {:>12} | {:>12} | {:>12} | {:>8}",
            "slack", "inference", "window E", "avg power", "g=16"
        );
        println!("{}", "-".repeat(64));
        for slack in [0.05, 0.10, 0.20, 0.30, 0.50, 0.75, 1.00] {
            let report = planner.run(slack)?;
            let map = FrequencyMap::from_plan(&report.plan, slack);
            println!(
                "{:>6.0}% | {:>9.2} ms | {:>9.3} mJ | {:>9.1} mW | {:>7.0}%",
                slack * 100.0,
                report.inference_secs * 1e3,
                report.total_energy.as_mj(),
                report.total_energy.as_f64() / report.plan.qos_secs * 1e3,
                map.granularity_share(16) * 100.0
            );
        }
    }
    println!("\n(window energy flattens once the energy-optimal frequencies are reachable;");
    println!(" beyond that, extra slack only adds gated-idle time)");
    Ok(())
}
