//! Full deployment walk-through for Visual Wake Words: profile the model
//! like the paper's runtime monitor, inspect the per-layer plan, verify the
//! DAE transform is bit-exact, and execute the deployment.
//!
//! Run with: `cargo run --release --example vww_deployment`

use dae_dvfs::{dae_forward_depthwise, FrequencyMap, Granularity, Planner, Stm32F767Target};
use tinyengine::{profile_model, qos_window, TinyEngine};
use tinynn::models::{vww, vww_sized};
use tinynn::{Layer, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = vww();
    let engine = TinyEngine::new();

    // Step 1A of the paper: identify the most time-consuming layers with
    // the on-board-timer profiler.
    let profile = profile_model(&engine, &model)?;
    println!("five hottest layers (timer-quantized, INA219-sampled):");
    for l in profile.hottest_layers(5) {
        println!(
            "  {:>16} ({:>9}): {:.3} ms @ {:.0} mW",
            l.name,
            l.kind.to_string(),
            l.measured_secs * 1e3,
            l.measured_power.as_mw()
        );
    }

    // Verify DAE bit-exactness on a real layer with real data (the paper:
    // "DAE-enabled CNNs entail no accuracy drops"). Use the small variant
    // so the functional check is instant.
    let small = vww_sized(32);
    let input = Tensor::from_fn(small.input_shape, |y, x, c| ((y * 7 + x + c) % 120) as i8);
    let mut checked = 0;
    for nl in small.layers() {
        if let Layer::Depthwise(dw) = &nl.layer {
            // The layer consumes the activation at its own depth; feed a
            // matching tensor (zeros suffice for an equivalence check).
            let shape = tinynn::Shape::new(8, 8, dw.channels);
            let act = Tensor::from_fn(shape, |y, x, c| ((y * 13 + x * 3 + c * 5) % 200) as i8);
            let baseline = dw.forward(&act)?;
            for g in Granularity::PAPER_SET {
                assert_eq!(dae_forward_depthwise(dw, &act, g)?, baseline);
            }
            checked += 1;
        }
    }
    let _ = input;
    println!("\nDAE bit-exactness verified on {checked} depthwise layers x 6 granularities");

    // Steps 2-3: optimize for a 30% slack window and deploy. The planner
    // compiles schedules + Pareto fronts once; optimize and deploy are
    // solver runs and replays against that cache.
    let planner = Planner::for_target(Stm32F767Target::paper(), &model)?;
    let qos = qos_window(planner.baseline_latency()?, 0.30);
    let plan = planner.optimize(qos)?;
    println!(
        "\nplan: {:.2} ms predicted (QoS {:.2} ms), {:.3} mJ predicted",
        plan.predicted_latency_secs * 1e3,
        qos * 1e3,
        plan.predicted_energy.as_mj()
    );

    let map = FrequencyMap::from_plan(&plan, 0.30);
    println!("\nper-layer decisions (granularity @ HFO MHz):");
    for row in &map.rows {
        println!(
            "  {:>16} ({:>9}): g={:<2} @ {} MHz",
            row.name,
            row.kind.to_string(),
            row.granularity,
            row.hfo.as_u64() / 1_000_000
        );
    }

    let report = planner.deploy(&plan)?;
    println!(
        "\ndeployed: {:.2} ms inference + {:.2} ms gated idle = {:.3} mJ window energy",
        report.inference_secs * 1e3,
        (qos - report.inference_secs) * 1e3,
        report.total_energy.as_mj()
    );
    Ok(())
}
