//! Clock-tree explorer: walk the RCC configuration space interactively —
//! enumerate valid PLL settings, group iso-frequency alternatives, and
//! price them with the power model (the Sec. II study of the paper).
//!
//! Run with: `cargo run --release --example clock_explorer`

use stm32_power::{PowerModel, PowerState};
use stm32_rcc::{
    flash_wait_states, ClockSource, ConfigSpace, Hertz, PllConfig, SwitchCostModel, SysclkConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = PowerModel::nucleo_f767zi();

    // 1. What does Eq. 1 give for a specific setting?
    let pll = PllConfig::new(ClockSource::hse(Hertz::mhz(50)), 25, 216, 2)?;
    println!(
        "PLL {{HSE=50 MHz, M=25, N=216, P=2}}: VCO {} -> SYSCLK {}",
        pll.vco_output(),
        pll.sysclk()
    );
    println!(
        "  flash wait states at {}: {}",
        pll.sysclk(),
        flash_wait_states(pll.sysclk()).wait_states()
    );

    // 2. The HFO ladder the paper explores, with power annotations.
    println!("\npaper HFO ladder (PLLM in {{25,50}}, PLLN in {{75..432}}):");
    for group in ConfigSpace::paper().iso_frequency_groups() {
        let best = group.coolest();
        let p = power.run_power(&SysclkConfig::Pll(*best));
        let (hse, m, n) = best.label_tuple();
        println!(
            "  {:>8}: best {{{hse},{m},{n}}} (VCO {:>8}) -> {p}",
            group.sysclk.to_string(),
            best.vco_output().to_string()
        );
    }

    // 3. Iso-frequency power gaps in the wide space.
    println!("\niso-frequency alternatives at 100 MHz (wide space):");
    if let Some(group) = ConfigSpace::wide()
        .iso_frequency_groups()
        .into_iter()
        .find(|g| g.sysclk == Hertz::mhz(100))
    {
        for cfg in &group.configs {
            let (hse, m, n) = cfg.label_tuple();
            println!(
                "  {{{hse},{m},{n}}}/P{}: VCO {:>8} -> {}",
                cfg.pllp(),
                cfg.vco_output().to_string(),
                power.run_power(&SysclkConfig::Pll(*cfg))
            );
        }
    }

    // 4. Switch costs and idle states.
    let model = SwitchCostModel::default();
    let lfo = SysclkConfig::hse_direct(Hertz::mhz(50));
    let hfo = SysclkConfig::Pll(pll);
    println!("\nswitching: HFO->LFO {}", model.cost(&hfo, &lfo));
    println!("switching: change PLLN {}", model.cold_pll_entry());
    println!("\nidle states at 216 MHz:");
    for (label, state) in [
        ("busy run", PowerState::Run(hfo)),
        ("wfi sleep", PowerState::SleepWfi(hfo)),
        ("clock gated", PowerState::ClockGated),
        ("stop", PowerState::Stop),
    ] {
        println!("  {label:>12}: {}", power.power(&state));
    }
    Ok(())
}
