//! Cross-target planning: the same model optimized for two boards, with
//! plans exported as versioned artifacts and re-imported for deployment.
//!
//! Demonstrates the three pieces the target abstraction adds:
//!
//! 1. [`Planner::for_target`] with the paper's [`Stm32F767Target`] and a
//!    parameterized [`GenericCortexMTarget`] (slower ladder, smaller
//!    cache, leaner power, slower flash);
//! 2. the typed [`PlanRequest`] surface;
//! 3. [`PlanArtifact`] round-trips: optimize here, serialize, validate and
//!    deploy "elsewhere" (a fresh planner standing in for another
//!    process) — including the typed rejection when the artifact and the
//!    receiving platform disagree.
//!
//! Run with: `cargo run --release --example cross_target`

use dae_dvfs::{
    DaeDvfsError, DeploymentPlan, GenericCortexMTarget, OperatingModes, PlanArtifact, PlanRequest,
    Planner, Stm32F767Target,
};
use mcu_sim::cache::CacheConfig;
use mcu_sim::MemoryTiming;
use stm32_power::{PowerModel, Watts};
use stm32_rcc::{Hertz, WaitStateLadder};
use tinynn::models::vww;

/// A battery-lean Cortex-M board: 25 MHz crystal, 75–150 MHz ladder,
/// 8 KB / 2-way cache, slower flash, smaller power envelope.
fn lean_board() -> GenericCortexMTarget {
    let modes = OperatingModes::from_sysclks(
        Hertz::mhz(25),
        Hertz::mhz(25),
        &[
            Hertz::mhz(75),
            Hertz::mhz(100),
            Hertz::mhz(125),
            Hertz::mhz(150),
        ],
    )
    .expect("ladder reachable from a 25 MHz HSE");
    GenericCortexMTarget::new("cortex-m-lean")
        .with_modes(modes)
        .with_cache(CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 32,
            ways: 2,
        })
        .with_power(
            PowerModel::nucleo_f767zi()
                .with_static_power(Watts::milliwatts(12.0))
                .with_core_w_per_hz(0.6e-9)
                .with_clock_gated_power(Watts::milliwatts(8.0)),
        )
        .with_memory(
            MemoryTiming::stm32f767().with_flash_ladder(WaitStateLadder::new(Hertz::mhz(25), 9)),
        )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = vww();
    let request = PlanRequest::slack(0.30);
    let mut summary_rows = Vec::new();

    println!("planning {} on two targets at 30% slack\n", model.name);
    let planners = [
        Planner::for_target(Stm32F767Target::paper(), &model)?,
        Planner::for_target(lean_board(), &model)?,
    ];
    let mut artifacts = Vec::new();
    for planner in &planners {
        let target_id = planner.target().id().to_string();
        let baseline = planner.baseline_latency()?;
        let plan = planner.plan(&request)?;
        let report = planner.deploy(&plan)?;
        println!(
            "{target_id:>12}: baseline {:.2} ms @ {} MHz ladder top, \
             plan {:.2} ms / {:.3} mJ window energy",
            baseline * 1e3,
            planner.config().modes.fastest_hfo().sysclk().as_u64() / 1_000_000,
            report.inference_secs * 1e3,
            report.total_energy.as_mj(),
        );

        // Export: the artifact carries schema version, target id and
        // model/config fingerprints.
        let artifact = plan.to_artifact(planner);
        let path = format!("PLAN_{target_id}.json");
        std::fs::write(&path, artifact.to_json())?;
        println!("{:>12}  exported -> {path}", "");

        summary_rows.push(
            repro_bench::json::Object::new()
                .str_field("target", &target_id)
                .f64_field("baseline_ms", baseline * 1e3, 3)
                .f64_field("inference_ms", report.inference_secs * 1e3, 3)
                .f64_field("window_energy_mj", report.total_energy.as_mj(), 4)
                .render(),
        );
        artifacts.push((path, artifact));
    }

    // "Another process": fresh planners re-import the artifacts from disk,
    // validate the fingerprints, and deploy bit-identically.
    println!("\nreplaying artifacts in fresh planners:");
    for (path, original) in &artifacts {
        let text = std::fs::read_to_string(path)?;
        let parsed = PlanArtifact::from_json(&text)?;
        assert_eq!(&parsed, original);
        let replayer = if parsed.target == "stm32f767" {
            Planner::for_target(Stm32F767Target::paper(), &model)?
        } else {
            Planner::for_target(lean_board(), &model)?
        };
        let plan = DeploymentPlan::from_artifact(&parsed, &replayer)?;
        let report = replayer.deploy(&plan)?;
        println!(
            "{:>12}: validated + deployed, {:.2} ms / {:.3} mJ (bit-identical replay)",
            parsed.target,
            report.inference_secs * 1e3,
            report.total_energy.as_mj(),
        );
    }

    // Cross-wiring the artifacts is refused with a typed error.
    let f767_artifact = &artifacts[0].1;
    let lean_planner = Planner::for_target(lean_board(), &model)?;
    match DeploymentPlan::from_artifact(f767_artifact, &lean_planner) {
        Err(DaeDvfsError::ArtifactMismatch {
            field,
            expected,
            found,
        }) => println!(
            "\ncross-target import correctly refused: {field} (expected {expected}, found {found})"
        ),
        other => panic!("expected an artifact mismatch, got {other:?}"),
    }

    // Machine-readable summary via the shared JSON emitter.
    let summary = repro_bench::json::Object::new()
        .str_field("example", "cross_target")
        .str_field("model", &model.name)
        .f64_field("slack", 0.30, 2)
        .array_field("targets", &summary_rows)
        .render_pretty();
    std::fs::write("CROSS_TARGET.json", summary + "\n")?;
    println!("summary written -> CROSS_TARGET.json");
    Ok(())
}
