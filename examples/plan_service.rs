//! Plan-service tour: serving concurrent plan requests through the
//! fingerprint-keyed cache and the shared-grid request coalescer.
//!
//! Three phases against one `PlanService`:
//!
//! 1. a **cold burst** of distinct QoS windows submitted at once — the
//!    coalescer groups them and answers the batch from one shared-grid
//!    DP instead of N independent solves;
//! 2. a **hot-key storm** — many threads ask for the same few plans;
//!    single-flight dedups the concurrent misses and everything else
//!    hits the cache;
//! 3. a **second tenant** registered from the same model and board
//!    description — equal fingerprints mean it shares the warm cache.
//!
//! Run with: `cargo run --release --example plan_service`

use std::sync::Arc;
use std::time::Duration;

use dae_dvfs::{PlanRequest, PlanService, Planner, ServiceConfig, Stm32F767Target};
use tinyengine::qos_window;
use tinynn::models::vww_sized;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = vww_sized(32);
    let planner = Arc::new(Planner::for_target(Stm32F767Target::paper(), &model)?);
    let baseline = planner.baseline_latency()?;

    let mut service = PlanService::new(
        ServiceConfig::default()
            .with_workers(4)
            .with_batch_linger(Duration::from_millis(5)),
    )?;
    let tenant_a = service.register(planner.clone());
    // Same model + board description => same fingerprints => shared cache.
    let tenant_b = service.register(Arc::new(Planner::for_target(
        Stm32F767Target::paper(),
        &model,
    )?));

    let windows: Vec<f64> = (0..8)
        .map(|i| qos_window(baseline, 0.1 + 0.1 * i as f64))
        .collect();

    service.run(|svc| -> Result<(), dae_dvfs::ServiceError> {
        // Phase 1: cold burst of distinct windows — coalesced solve.
        let tickets: Vec<_> = windows
            .iter()
            .map(|&w| svc.submit(tenant_a, &PlanRequest::qos(w)))
            .collect::<Result<_, _>>()?;
        println!("cold burst: {} distinct windows submitted", tickets.len());
        for (ticket, &w) in tickets.into_iter().zip(&windows) {
            let plan = ticket.wait()?;
            println!(
                "  window {:>6.2} ms -> latency {:>6.2} ms, energy {:>7.4} mJ",
                w * 1e3,
                plan.predicted_latency_secs * 1e3,
                plan.predicted_energy.as_mj()
            );
        }
        let after_cold = svc.stats();
        println!(
            "  {} batches (max size {}), {} solves for {} requests\n",
            after_cold.batches,
            after_cold.max_batch,
            after_cold.cache.inserted,
            after_cold.submitted
        );

        // Phase 2: hot-key storm from many threads.
        let hot = [PlanRequest::slack(0.3), PlanRequest::slack(0.5)];
        std::thread::scope(|s| {
            for _ in 0..8 {
                let hot = &hot;
                s.spawn(move || {
                    for request in hot.iter().cycle().take(50) {
                        let plan = svc.plan(tenant_a, request).expect("hot request solves");
                        assert!(plan.predicted_latency_secs <= plan.qos_secs);
                    }
                });
            }
        });
        let after_storm = svc.stats();
        println!("hot-key storm: 400 requests from 8 threads");
        println!(
            "  hit rate {:.1}%, joined in-flight {}, total solves {}",
            after_storm.hit_rate() * 100.0,
            after_storm.cache.joined,
            after_storm.cache.inserted
        );

        // Phase 3: the second tenant rides the warm cache.
        let shared = svc.plan(tenant_b, &PlanRequest::slack(0.3))?;
        let again = svc.plan(tenant_a, &PlanRequest::slack(0.3))?;
        assert!(Arc::ptr_eq(&shared, &again));
        println!("\nsecond tenant: slack(0.3) answered from the shared cache");
        Ok(())
    })?;

    let stats = service.stats();
    println!("\nfinal stats");
    println!("  requests    {:>8}", stats.submitted);
    println!("  completed   {:>8}", stats.completed);
    println!("  hit rate    {:>7.1}%", stats.hit_rate() * 100.0);
    println!("  solves      {:>8}", stats.cache.inserted);
    println!(
        "  batches     {:>8} (mean {:.1})",
        stats.batches,
        stats.mean_batch()
    );
    println!("  throughput  {:>8.0} req/s", stats.throughput_rps());
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        stats.submitted,
        "cache counters must account for every admitted request"
    );
    Ok(())
}
