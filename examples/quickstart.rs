//! Quickstart: optimize and deploy one model under a QoS budget.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! This walks the single-request path (`Planner` + `PlanRequest`); for
//! serving *streams* of concurrent requests through the plan cache and
//! request coalescer, see `examples/plan_service.rs`
//! (`dae_dvfs::PlanService`); to put that service on a socket and give
//! its cache a durable on-disk tier, see `dae_dvfs::PlanServer` and
//! `dae_dvfs::PlanRegistry` (DESIGN.md, "Network serving & artifact
//! registry"). Workspace invariants (locking discipline,
//! determinism, panic hygiene) are enforced by `repro-lint`; see
//! DESIGN.md, "Static analysis & concurrency discipline".

use dae_dvfs::{PlanRequest, Planner, Stm32F767Target};
use tinyengine::{qos_window, run_iso_latency, IdlePolicy, TinyEngine};
use tinynn::models::vww;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The model: Visual Wake Words, int8, MCUNet-like scale.
    let model = vww();
    println!(
        "model: {} ({} layers, {:.1}M MACs, {} KB weights)",
        model.name,
        model.layer_count(),
        model.total_macs()? as f64 / 1e6,
        model.weight_bytes() / 1024
    );

    // Baseline: TinyEngine at a constant 216 MHz.
    let engine = TinyEngine::new();
    let baseline = engine.run(&model)?;
    println!(
        "TinyEngine baseline: {:.2} ms, {:.3} mJ ({:.0} mW average)",
        baseline.total_time_secs * 1e3,
        baseline.total_energy.as_mj(),
        baseline.average_power_mw()
    );

    // Our approach: DAE + DVFS with a 30% latency slack. The planner owns
    // the target description, compiled schedules and Pareto fronts;
    // further QoS points would reuse them for free. The typed PlanRequest
    // names the budget instead of a positional argument.
    let slack = 0.30;
    let planner = Planner::for_target(Stm32F767Target::paper(), &model)?;
    let plan = planner.plan(&PlanRequest::slack(slack))?;
    let report = planner.deploy(&plan)?;
    println!(
        "DAE+DVFS @ {:.0}% slack: {:.2} ms inference, {:.3} mJ total window energy",
        slack * 100.0,
        report.inference_secs * 1e3,
        report.total_energy.as_mj()
    );

    // Fair comparison: both baselines measured over the same window.
    let qos = qos_window(baseline.total_time_secs, slack);
    let te = run_iso_latency(&engine, &model, qos, IdlePolicy::Wfi216)?;
    let gated = run_iso_latency(&engine, &model, qos, IdlePolicy::ClockGated)?;
    println!(
        "same window: TinyEngine {:.3} mJ, TinyEngine+gating {:.3} mJ",
        te.total_energy.as_mj(),
        gated.total_energy.as_mj()
    );
    println!(
        "energy gain: {:.1}% vs TinyEngine, {:.1}% vs TinyEngine+gating",
        (1.0 - report.total_energy.as_f64() / te.total_energy.as_f64()) * 100.0,
        (1.0 - report.total_energy.as_f64() / gated.total_energy.as_f64()) * 100.0
    );
    Ok(())
}
