//! Battery-lifetime study: what the paper's energy gains mean in days of
//! operation for a duty-cycled far-edge sensor.
//!
//! Run with: `cargo run --release --example battery_lifetime`

use dae_dvfs::{run_dae_dvfs, DseConfig};
use stm32_power::{Battery, Watts};
use tinyengine::{qos_window, run_iso_latency, IdlePolicy, TinyEngine};
use tinynn::models::person_detection;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = person_detection();
    let engine = TinyEngine::new();
    let baseline = engine.run(&model)?;
    let slack = 0.30;
    let qos = qos_window(baseline.total_time_secs, slack);

    let ours = run_dae_dvfs(&model, slack, &DseConfig::paper())?;
    let te = run_iso_latency(&engine, &model, qos, IdlePolicy::Wfi216)?;
    let gated = run_iso_latency(&engine, &model, qos, IdlePolicy::ClockGated)?;

    let battery = Battery::cr123a();
    let standby = Watts::milliwatts(0.05); // stop-mode sensor between bursts
    let per_day = 50_000.0; // ~0.6 inference/s duty cycle

    println!(
        "person detection on a CR123A, {per_day:.0} inference windows/day ({:.1} ms each):\n",
        qos * 1e3
    );
    println!(
        "{:>28} | {:>12} | {:>10}",
        "strategy", "window E", "lifetime"
    );
    println!("{}", "-".repeat(58));
    for (name, energy) in [
        ("TinyEngine (idle @216)", te.total_energy),
        ("TinyEngine + clock gating", gated.total_energy),
        ("DAE + DVFS (this work)", ours.total_energy),
    ] {
        let days = battery.lifetime_days(energy, qos, per_day, standby);
        println!(
            "{name:>28} | {:>9.3} mJ | {:>7.1} d",
            energy.as_mj(),
            days
        );
    }
    println!(
        "\nper-window gain vs TinyEngine: {:.1}% -> proportionally longer deployments",
        (1.0 - ours.total_energy.as_f64() / te.total_energy.as_f64()) * 100.0
    );
    Ok(())
}
