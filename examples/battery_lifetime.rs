//! Battery-lifetime study: what the paper's energy gains mean in days of
//! operation for a duty-cycled far-edge sensor.
//!
//! Run with: `cargo run --release --example battery_lifetime`

use dae_dvfs::{Planner, Stm32F767Target};
use stm32_power::{Battery, Watts};
use tinynn::models::person_detection;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = person_detection();
    let slack = 0.30;

    // One planner gives all three contenders over the same window: our
    // deployment plus both TinyEngine baselines (replayed from one cached
    // lowering).
    let planner = Planner::for_target(Stm32F767Target::paper(), &model)?;
    let cmp = planner.compare_with_baselines(slack)?;
    let qos = cmp.qos_secs;

    let battery = Battery::cr123a();
    let standby = Watts::milliwatts(0.05); // stop-mode sensor between bursts
    let per_day = 50_000.0; // ~0.6 inference/s duty cycle

    println!(
        "person detection on a CR123A, {per_day:.0} inference windows/day ({:.1} ms each):\n",
        qos * 1e3
    );
    println!(
        "{:>28} | {:>12} | {:>10}",
        "strategy", "window E", "lifetime"
    );
    println!("{}", "-".repeat(58));
    for (name, energy) in [
        ("TinyEngine (idle @216)", cmp.tinyengine),
        ("TinyEngine + clock gating", cmp.tinyengine_gated),
        ("DAE + DVFS (this work)", cmp.ours),
    ] {
        let days = battery.lifetime_days(energy, qos, per_day, standby);
        println!("{name:>28} | {:>9.3} mJ | {:>7.1} d", energy.as_mj(), days);
    }
    println!(
        "\nper-window gain vs TinyEngine: {:.1}% -> proportionally longer deployments",
        cmp.gain_vs_tinyengine_pct()
    );
    Ok(())
}
